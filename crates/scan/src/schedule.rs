//! Level-synchronous schedules for the (modified, possibly truncated)
//! Blelloch scan.
//!
//! A [`ScanSchedule`] is a pure description of *which index pairs are
//! combined at which level* — independent of the element type, the operator,
//! and the execution substrate. The same schedule is consumed by:
//!
//! * the in-process executors ([`crate::execute_in_place`]), serially or with
//!   a thread per chunk of pairs (one CUDA-kernel launch per level in the
//!   paper's implementation);
//! * the PRAM simulator (`bppsa-pram`), which prices each level against a
//!   device profile;
//! * the FLOP analyzer (`bppsa-core`), which reproduces Figure 11.
//!
//! `with_up_levels(len, k)` generalizes Algorithm 1 into the paper's §5.2
//! hybrid: up-sweep levels `0..k`, a serial exclusive scan across the block
//! roots, then down-sweep levels `k-1..0`. `k = 0` degenerates to the linear
//! scan; `k = ⌈log₂ len⌉ − 1` is exactly Algorithm 1 (its `a[n] ← I` line and
//! top down-sweep level are the two-block middle scan).

use std::fmt;

/// One combine in a level: `a[r] ← a[l] ⊕ a[r]` during the up-sweep,
/// `t ← a[l]; a[l] ← a[r]; a[r] ← a[r] ⊕ t` during the down-sweep
/// (the paper's reversed-operand modification on line 13 of Algorithm 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Pair {
    /// Left index (the earlier segment's fold).
    pub l: usize,
    /// Right index (updated in place).
    pub r: usize,
}

/// Which phase of the scan a level belongs to (for cost accounting).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PhaseKind {
    /// An up-sweep level: pairs run in parallel, matrix–matrix heavy.
    UpSweep,
    /// The serial exclusive scan over block roots (length = #blocks).
    Middle,
    /// A down-sweep level: pairs run in parallel.
    DownSweep,
}

/// Cost-accounting view of one step group of the schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseInfo {
    /// The phase this group belongs to.
    pub kind: PhaseKind,
    /// Level index within its sweep (`0` for the middle phase).
    pub level: usize,
    /// Number of combines in the group.
    pub ops: usize,
    /// Whether the combines may run concurrently (`false` only for Middle).
    pub parallel: bool,
}

/// A complete level-synchronous schedule for an exclusive scan over `len`
/// elements.
///
/// # Examples
///
/// ```
/// use bppsa_scan::ScanSchedule;
///
/// let s = ScanSchedule::full(8);
/// assert_eq!(s.len(), 8);
/// // Blelloch on 8 elements: up levels d=0,1 then a 2-block middle scan
/// // then down levels d=1,0.
/// assert_eq!(s.up_levels().len(), 2);
/// assert_eq!(s.down_levels().len(), 2);
/// assert_eq!(s.block_roots().len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanSchedule {
    len: usize,
    up_levels: Vec<Vec<Pair>>,
    block_roots: Vec<usize>,
    down_levels: Vec<Vec<Pair>>,
}

/// `⌈log₂ m⌉` with the convention `ceil_log2(0) = ceil_log2(1) = 0`.
pub fn ceil_log2(m: usize) -> u32 {
    if m <= 1 {
        0
    } else {
        usize::BITS - (m - 1).leading_zeros()
    }
}

fn level_pairs(n: usize, d: u32) -> Vec<Pair> {
    // Algorithm 1: for all i ← 0 to (n − 2^d) by 2^(d+1).
    let step = 1usize << (d + 1);
    let half = 1usize << d;
    let mut pairs = Vec::new();
    if half > n {
        return pairs;
    }
    let mut i = 0usize;
    while i <= n - half {
        pairs.push(Pair {
            l: i + half - 1,
            r: (i + step - 1).min(n),
        });
        i += step;
    }
    pairs
}

impl ScanSchedule {
    /// The full modified Blelloch schedule of Algorithm 1: up-sweep levels
    /// `0..⌈log₂ len⌉ − 1`, then the two-block middle (equivalent to the
    /// paper's `a[n] ← I` plus top down-sweep level), then the remaining
    /// down-sweep levels.
    pub fn full(len: usize) -> Self {
        Self::with_up_levels(len, (ceil_log2(len).saturating_sub(1)) as usize)
    }

    /// The degenerate schedule with no tree levels: a pure serial exclusive
    /// scan (the paper's "linear scan" baseline, same step count as BP).
    pub fn linear(len: usize) -> Self {
        Self::with_up_levels(len, 0)
    }

    /// The §5.2 hybrid: up-sweep levels `0..k`, serial scan over the
    /// `⌈len / 2^k⌉` block roots, down-sweep levels `k-1..0`.
    ///
    /// `k` is clamped to `⌈log₂ len⌉ − 1` (larger `k` only adds a wasted
    /// total-aggregate combine that the exclusive scan overwrites).
    pub fn with_up_levels(len: usize, k: usize) -> Self {
        if len == 0 {
            return Self {
                len,
                up_levels: Vec::new(),
                block_roots: Vec::new(),
                down_levels: Vec::new(),
            };
        }
        let n = len - 1;
        let k = k.min(ceil_log2(len).saturating_sub(1) as usize) as u32;

        let up_levels: Vec<Vec<Pair>> = (0..k).map(|d| level_pairs(n, d)).collect();

        let block = 1usize << k;
        let num_blocks = len.div_ceil(block);
        let block_roots: Vec<usize> = (0..num_blocks)
            .map(|b| ((b + 1) * block - 1).min(n))
            .collect();

        let down_levels: Vec<Vec<Pair>> = (0..k).rev().map(|d| level_pairs(n, d)).collect();

        Self {
            len,
            up_levels,
            block_roots,
            down_levels,
        }
    }

    /// Number of elements the schedule scans.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the schedule is for an empty array.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Up-sweep levels in execution order (`d = 0, 1, …`).
    pub fn up_levels(&self) -> &[Vec<Pair>] {
        &self.up_levels
    }

    /// Positions holding block folds after the up-sweep, in ascending order.
    pub fn block_roots(&self) -> &[usize] {
        &self.block_roots
    }

    /// The index of the up-sweep block containing scan position `pos`
    /// (blocks are the `2^k`-sized tiles whose roots are
    /// [`ScanSchedule::block_roots`]; block `b` covers the positions up to
    /// and including `block_roots[b]`).
    ///
    /// Every up- and down-sweep pair of the schedule has both of its
    /// positions inside a single block — cross-block dataflow happens only
    /// through the serial middle scan. That containment (pinned by the
    /// `pairs_never_cross_block_boundaries` test) is what lets a segmented
    /// executor run disjoint block ranges concurrently and still be
    /// bit-for-bit with the sequential order.
    ///
    /// # Panics
    ///
    /// Panics if `pos >= len` (such a position is on no block).
    pub fn block_of(&self, pos: usize) -> usize {
        assert!(pos < self.len, "block_of: position {pos} out of range");
        self.block_roots.partition_point(|&r| r < pos)
    }

    /// Down-sweep levels in execution order (`d = k−1, …, 0`).
    pub fn down_levels(&self) -> &[Vec<Pair>] {
        &self.down_levels
    }

    /// Total number of `⊕` combines the schedule performs (work complexity;
    /// the paper's `W_Blelloch(n) = Θ(n)`, Equation 7).
    pub fn combine_count(&self) -> usize {
        let tree: usize = self
            .up_levels
            .iter()
            .chain(&self.down_levels)
            .map(Vec::len)
            .sum();
        // The middle serial scan folds each block root into the running
        // prefix once.
        tree + self.block_roots.len()
    }

    /// Number of dependent steps on the critical path assuming unbounded
    /// parallel workers: one per tree level plus the serial middle (the
    /// paper's `S_Blelloch(n) = Θ(log n)`, Equation 6, when `k` is maximal).
    pub fn step_count(&self) -> usize {
        self.up_levels.len() + self.block_roots.len() + self.down_levels.len()
    }

    /// Flattened cost-accounting view: one entry per level, plus the middle.
    pub fn phases(&self) -> Vec<PhaseInfo> {
        let mut phases = Vec::with_capacity(self.up_levels.len() + 1 + self.down_levels.len());
        for (d, level) in self.up_levels.iter().enumerate() {
            phases.push(PhaseInfo {
                kind: PhaseKind::UpSweep,
                level: d,
                ops: level.len(),
                parallel: true,
            });
        }
        phases.push(PhaseInfo {
            kind: PhaseKind::Middle,
            level: 0,
            ops: self.block_roots.len(),
            parallel: false,
        });
        let k = self.down_levels.len();
        for (idx, level) in self.down_levels.iter().enumerate() {
            phases.push(PhaseInfo {
                kind: PhaseKind::DownSweep,
                level: k - 1 - idx,
                ops: level.len(),
                parallel: true,
            });
        }
        phases
    }

    /// Verifies that every level touches each array index at most once —
    /// the disjointness invariant the threaded executor's safety relies on.
    pub fn assert_levels_disjoint(&self) {
        for level in self.up_levels.iter().chain(&self.down_levels) {
            let mut seen = std::collections::HashSet::new();
            for p in level {
                assert!(p.l < self.len && p.r < self.len, "pair out of range");
                assert!(p.l < p.r, "pair must have l < r");
                assert!(seen.insert(p.l), "index {} repeated in level", p.l);
                assert!(seen.insert(p.r), "index {} repeated in level", p.r);
            }
        }
    }
}

impl fmt::Display for ScanSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ScanSchedule(len={}, up_levels={}, blocks={}, down_levels={}, combines={})",
            self.len,
            self.up_levels.len(),
            self.block_roots.len(),
            self.down_levels.len(),
            self.combine_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(0), 0);
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(1024), 10);
        assert_eq!(ceil_log2(1025), 11);
    }

    #[test]
    fn full_schedule_power_of_two() {
        let s = ScanSchedule::full(8);
        // Up: d=0 → 4 pairs, d=1 → 2 pairs. Middle: 2 blocks. Down: d=1,0.
        assert_eq!(s.up_levels().len(), 2);
        assert_eq!(s.up_levels()[0].len(), 4);
        assert_eq!(s.up_levels()[1].len(), 2);
        assert_eq!(s.block_roots(), &[3, 7]);
        assert_eq!(s.down_levels().len(), 2);
        assert_eq!(s.down_levels()[0].len(), 2); // d=1
        assert_eq!(s.down_levels()[1].len(), 4); // d=0
        s.assert_levels_disjoint();
    }

    #[test]
    fn full_schedule_matches_algorithm1_pairs_m4() {
        // Hand-traced in the design: m=4 up-sweep d=0 has (0,1), (2,3).
        let s = ScanSchedule::full(4);
        assert_eq!(
            s.up_levels()[0],
            vec![Pair { l: 0, r: 1 }, Pair { l: 2, r: 3 }]
        );
        assert_eq!(s.block_roots(), &[1, 3]);
        assert_eq!(
            s.down_levels()[0],
            vec![Pair { l: 0, r: 1 }, Pair { l: 2, r: 3 }]
        );
    }

    #[test]
    fn clamped_pair_accumulates_partial_block() {
        // m=7, k=2: the level-1 pair (5, min(7,6)=6) folds the partial block.
        let s = ScanSchedule::with_up_levels(7, 2);
        assert!(s.up_levels()[1].contains(&Pair { l: 5, r: 6 }));
        assert_eq!(s.block_roots(), &[3, 6]);
        s.assert_levels_disjoint();
    }

    #[test]
    fn linear_schedule_is_pure_middle() {
        let s = ScanSchedule::linear(10);
        assert!(s.up_levels().is_empty());
        assert!(s.down_levels().is_empty());
        assert_eq!(s.block_roots().len(), 10);
        assert_eq!(s.combine_count(), 10);
        assert_eq!(s.step_count(), 10);
    }

    #[test]
    fn oversized_k_is_clamped_to_full() {
        assert_eq!(ScanSchedule::with_up_levels(16, 99), ScanSchedule::full(16));
    }

    #[test]
    fn empty_and_singleton_schedules() {
        let e = ScanSchedule::full(0);
        assert!(e.is_empty());
        assert_eq!(e.combine_count(), 0);
        let s = ScanSchedule::full(1);
        assert_eq!(s.block_roots(), &[0]);
        assert_eq!(s.combine_count(), 1);
    }

    #[test]
    fn work_complexity_is_linear() {
        // Equation 7: W_Blelloch(n) = Θ(n). For power-of-two m the exact
        // count is 2(m-1) - m/2 + ... — just check 1x-3x bounds.
        for m in [16usize, 64, 256, 1024] {
            let s = ScanSchedule::full(m);
            let w = s.combine_count();
            assert!(w >= m - 1, "work {w} too small for m={m}");
            assert!(w <= 2 * m, "work {w} too large for m={m}");
        }
    }

    #[test]
    fn step_complexity_is_logarithmic_for_full() {
        // Equation 6: S_Blelloch = Θ(log n) — up + down levels ≈ 2 log m,
        // middle contributes the 2-block serial scan.
        let s = ScanSchedule::full(1 << 12);
        assert_eq!(s.up_levels().len(), 11);
        assert_eq!(s.down_levels().len(), 11);
        assert_eq!(s.step_count(), 11 + 2 + 11);
    }

    #[test]
    fn phases_cover_all_combines() {
        for len in [1usize, 2, 3, 5, 8, 13, 21, 64] {
            for k in 0..8 {
                let s = ScanSchedule::with_up_levels(len, k);
                let total: usize = s.phases().iter().map(|p| p.ops).sum();
                assert_eq!(total, s.combine_count(), "len={len} k={k}");
            }
        }
    }

    #[test]
    fn all_levels_disjoint_across_sizes() {
        for len in 0..130 {
            for k in 0..9 {
                ScanSchedule::with_up_levels(len, k).assert_levels_disjoint();
            }
        }
    }

    #[test]
    fn display_mentions_len() {
        assert!(format!("{}", ScanSchedule::full(8)).contains("len=8"));
    }

    #[test]
    fn pairs_never_cross_block_boundaries() {
        // The segmentation exactness invariant: every up/down pair lies
        // entirely within one 2^k block, so partitioning the instruction
        // stream at block boundaries reorders only independent work. The
        // `.min(n)` clamp in level_pairs stays inside the last block.
        for len in 1..130usize {
            for k in 0..9 {
                let s = ScanSchedule::with_up_levels(len, k);
                for level in s.up_levels().iter().chain(s.down_levels()) {
                    for p in level {
                        assert_eq!(
                            s.block_of(p.l),
                            s.block_of(p.r),
                            "len={len} k={k} pair {p:?} crosses blocks"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn block_of_matches_roots() {
        let s = ScanSchedule::with_up_levels(11, 2); // blocks of 4: roots 3,7,10
        assert_eq!(s.block_roots(), &[3, 7, 10]);
        for (pos, want) in [(0, 0), (3, 0), (4, 1), (7, 1), (8, 2), (10, 2)] {
            assert_eq!(s.block_of(pos), want, "pos={pos}");
        }
    }

    #[test]
    fn degenerate_lengths_are_pure_linear() {
        // len=1: ceil_log2(1)=0 → k clamps to 0 whatever was asked; one
        // block root at position 0 and no tree levels.
        for k in [0usize, 1, 4, 64] {
            let s = ScanSchedule::with_up_levels(1, k);
            assert!(s.up_levels().is_empty() && s.down_levels().is_empty());
            assert_eq!(s.block_roots(), &[0]);
            assert_eq!(s.combine_count(), 1);
            assert_eq!(s.block_of(0), 0);
        }
        // len=2: ceil_log2(2)−1 = 0 clamps every k to 0, so even "full" is
        // the two-root linear middle with no tree levels.
        for k in [0usize, 1, 4, 64] {
            let s = ScanSchedule::with_up_levels(2, k);
            assert!(s.up_levels().is_empty() && s.down_levels().is_empty());
            assert_eq!(s.block_roots(), &[0, 1]);
            assert_eq!(s.combine_count(), 2);
        }
        assert_eq!(ScanSchedule::full(2), ScanSchedule::linear(2));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn block_of_past_len_panics() {
        let _ = ScanSchedule::full(4).block_of(4);
    }
}
