//! # bppsa-bench — harness utilities for regenerating the paper's tables
//! and figures
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md's per-experiment index); this library holds the shared
//! plumbing: a results directory, CSV emission, and scale selection.
//!
//! Conventions:
//!
//! * every binary prints the paper-style rows/series to stdout **and**
//!   writes a CSV under `results/` for plotting;
//! * binaries run a scaled-down configuration by default so the whole suite
//!   finishes in minutes on a laptop; pass `--full` (or set `BPPSA_FULL=1`)
//!   for paper-scale runs.
//!
//! ```
//! use bppsa_bench::fmt_sig;
//!
//! // The shared number formatting every harness table uses.
//! assert_eq!(fmt_sig(1234.0), "1234");
//! assert_eq!(fmt_sig(2.345), "2.35");
//! assert_eq!(fmt_sig(0.012345), "0.0123");
//! ```

#![warn(missing_docs)]

use bppsa_sparse::Csr;
use bppsa_tensor::Matrix;
use rand::rngs::StdRng;
use rand::Rng;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Random `rows × cols` CSR matrix at the given density: each cell is
/// nonzero with probability `density`, values uniform in `(-1, 1)` — the
/// shared random-operand generator of the criterion benches
/// (`planned_scan`, `serve_throughput`, `numeric_kernels`), so their
/// workloads cannot drift apart.
pub fn random_csr(rng: &mut StdRng, rows: usize, cols: usize, density: f64) -> Csr<f64> {
    Csr::from_dense(&Matrix::from_fn(rows, cols, |_, _| {
        if rng.random_range(0.0..1.0) < density {
            rng.random_range(-1.0..1.0)
        } else {
            0.0
        }
    }))
}

/// Returns (and creates) the directory results CSVs are written to:
/// `results/` under the workspace root (or the current directory).
pub fn results_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/bench → workspace root is two levels up.
    let base = std::env::var("CARGO_MANIFEST_DIR")
        .map(|m| Path::new(&m).join("../.."))
        .unwrap_or_else(|_| PathBuf::from("."));
    let dir = base.join("results");
    fs::create_dir_all(&dir).expect("create results directory");
    dir
}

/// Whether the invocation asked for the full, paper-scale configuration.
pub fn is_full_run() -> bool {
    std::env::args().any(|a| a == "--full")
        || std::env::var("BPPSA_FULL")
            .map(|v| v == "1")
            .unwrap_or(false)
}

/// Writes a CSV file under [`results_dir`], returning its path.
///
/// # Panics
///
/// Panics on I/O errors, naming the offending path (harness binaries want
/// loud *and diagnosable* failures).
pub fn write_csv(name: &str, header: &[&str], rows: &[Vec<String>]) -> PathBuf {
    let path = results_dir().join(name);
    let mut f = fs::File::create(&path)
        .unwrap_or_else(|e| panic!("bppsa-bench: create {}: {e}", path.display()));
    writeln!(f, "{}", header.join(","))
        .unwrap_or_else(|e| panic!("bppsa-bench: write header to {}: {e}", path.display()));
    for row in rows {
        writeln!(f, "{}", row.join(","))
            .unwrap_or_else(|e| panic!("bppsa-bench: write row to {}: {e}", path.display()));
    }
    path
}

/// Reads a text file (e.g. a results CSV or committed baseline), panicking
/// with the offending path on failure — a bare
/// `read_to_string(p).unwrap()` reports only the `io::Error`, leaving the
/// failing binary undiagnosable.
///
/// # Panics
///
/// Panics on I/O errors, naming the path.
pub fn read_text(path: impl AsRef<Path>) -> String {
    let p = path.as_ref();
    fs::read_to_string(p).unwrap_or_else(|e| panic!("bppsa-bench: read {}: {e}", p.display()))
}

/// Prints a fixed-width table row to stdout.
pub fn print_row(cells: &[String], widths: &[usize]) {
    let line: Vec<String> = cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect();
    println!("{}", line.join("  "));
}

/// Formats a float with engineering-style significant digits.
pub fn fmt_sig(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_dir_exists_after_call() {
        let d = results_dir();
        assert!(d.is_dir());
    }

    #[test]
    fn csv_roundtrip() {
        let p = write_csv(
            "self_test.csv",
            &["a", "b"],
            &[vec!["1".into(), "2".into()]],
        );
        let content = read_text(p);
        assert_eq!(content, "a,b\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "bppsa-bench: read")]
    fn read_text_names_the_missing_path() {
        let _ = read_text("results/this-file-does-not-exist.csv");
    }

    #[test]
    fn fmt_sig_ranges() {
        assert_eq!(fmt_sig(0.0), "0");
        assert_eq!(fmt_sig(1234.0), "1234");
        assert_eq!(fmt_sig(2.345), "2.35");
        assert_eq!(fmt_sig(0.012345), "0.0123");
    }
}
