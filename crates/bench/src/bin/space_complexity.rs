//! **§2.2 / §3.6 / Figure 3**: space complexity and utilization of BPPSA
//! versus pipeline parallelism as the device count grows.
//!
//! Run: `cargo run -p bppsa-bench --bin space_complexity`
//!
//! Reproduces the paper's scalability argument with numbers:
//! * GPipe's per-device memory is `Θ(L/K + K)·M_x` — it *grows* with K once
//!   K exceeds √L, and its bubble fraction grows as `(K−1)/(M+K−1)`;
//! * PipeDream fixes utilization but stashes `K` weight versions and incurs
//!   staleness `K−1`, which momentum amplifies;
//! * BPPSA's per-device memory is `Θ(max(n/p, 1))·M_Jacob` — it *shrinks*
//!   monotonically to one Jacobian per worker.

use bppsa_bench::write_csv;
use bppsa_pipeline::{momentum_staleness_gap, GpipeConfig, PipedreamConfig};
use bppsa_pram::memory::{bppsa_per_device_bytes, pipeline_per_device_bytes};

fn main() {
    let layers = 1000usize;
    let activation_bytes = 64 * 1024; // M_x: one boundary activation
    let jacob_bytes = 512 * 1024; // M_Jacob: one sparse transposed Jacobian

    println!("Space complexity vs number of devices (L = {layers} layers)");
    println!("M_x = {activation_bytes} B, M_Jacob = {jacob_bytes} B (M_Jacob >> M_x, per §3.6)\n");
    println!(
        "{:>6}  {:>16}  {:>16}  {:>14}  {:>10}  {:>10}",
        "K=p", "GPipe B/dev", "BPPSA B/dev", "PipeDream B/dev", "bubble", "staleness"
    );

    let mut rows = Vec::new();
    for k in [1usize, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1000] {
        let gpipe_mem = pipeline_per_device_bytes(layers, k, activation_bytes);
        let bppsa_mem = bppsa_per_device_bytes(layers, k, jacob_bytes);
        let gpipe = GpipeConfig {
            layers,
            devices: k,
            micro_batches: k, // fill the pipeline (Figure 3)
            activation_bytes,
        }
        .analyze();
        let pd = PipedreamConfig {
            layers,
            devices: k,
            stage_weight_bytes: 4 * 1024 * 1024 / k.max(1),
            activation_bytes,
        }
        .analyze();
        println!(
            "{:>6}  {:>16}  {:>16}  {:>14}  {:>9.1}%  {:>10}",
            k,
            gpipe_mem,
            bppsa_mem,
            pd.per_device_bytes,
            gpipe.bubble_fraction * 100.0,
            pd.max_staleness
        );
        rows.push(vec![
            k.to_string(),
            gpipe_mem.to_string(),
            bppsa_mem.to_string(),
            pd.per_device_bytes.to_string(),
            format!("{:.4}", gpipe.bubble_fraction),
            pd.max_staleness.to_string(),
        ]);
    }

    let path = write_csv(
        "space_complexity.csv",
        &[
            "devices",
            "gpipe_bytes",
            "bppsa_bytes",
            "pipedream_bytes",
            "gpipe_bubble",
            "staleness",
        ],
        &rows,
    );

    println!("\nshape check:");
    let g64 = pipeline_per_device_bytes(layers, 64, activation_bytes);
    let g512 = pipeline_per_device_bytes(layers, 512, activation_bytes);
    let b64 = bppsa_per_device_bytes(layers, 64, jacob_bytes);
    let b512 = bppsa_per_device_bytes(layers, 512, jacob_bytes);
    println!(
        "  GPipe 64→512 devices: {g64} → {g512} B/dev (grows: {})",
        g512 > g64
    );
    println!(
        "  BPPSA 64→512 devices: {b64} → {b512} B/dev (shrinks: {})",
        b512 < b64
    );

    println!("\nstaleness × momentum (the paper's PipeDream critique, quadratic probe):");
    for staleness in [1usize, 2, 4, 8] {
        let (fresh, stale) = momentum_staleness_gap(1.0, 0.1, 0.9, staleness, 200);
        println!(
            "  staleness {staleness}: |x*| fresh {fresh:.2e} vs stale {stale:.2e} ({}x worse)",
            (stale / fresh.max(1e-300)) as i64
        );
    }

    println!("\nwrote {}", path.display());
}
