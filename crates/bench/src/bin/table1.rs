//! **Table 1**: sparsity of guaranteed zeros for convolution / ReLU /
//! max-pooling, and the speedup of analytical CSR generation over
//! column-at-a-time VJP extraction (the PyTorch-Autograd baseline).
//!
//! Run: `cargo run -p bppsa-bench --bin table1 --release [--full]`
//!
//! Default scale uses 16×16 inputs (paper: 32×32) so the VJP baseline —
//! whose cost is one backward pass *per output element* — finishes quickly;
//! `--full` uses the paper's 32×32. The VJP baseline is measured on a column
//! sample and extrapolated (documented in EXPERIMENTS.md).

use bppsa_bench::{fmt_sig, is_full_run, print_row, write_csv};
use bppsa_ops::{Conv2d, Conv2dConfig, MaxPool2d, Operator, Relu};
use bppsa_tensor::init::{seeded_rng, uniform_tensor};
use bppsa_tensor::Tensor;
use bppsa_tensor::Vector;
use std::time::Instant;

/// Times one analytic CSR generation (seconds).
fn time_analytic<O: Operator<f32>>(op: &O, x: &Tensor<f32>, y: &Tensor<f32>, reps: usize) -> f64 {
    let t0 = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(op.transposed_jacobian(x, y));
    }
    t0.elapsed().as_secs_f64() / reps as f64
}

/// Times the VJP column baseline on `sample_cols` columns and extrapolates
/// to the full Jacobian (seconds).
fn time_vjp_extrapolated<O: Operator<f32>>(
    op: &O,
    x: &Tensor<f32>,
    y: &Tensor<f32>,
    sample_cols: usize,
) -> f64 {
    let cols = op.output_len();
    let sample = sample_cols.min(cols);
    let t0 = Instant::now();
    for o in 0..sample {
        let seed = Vector::one_hot(cols, o * (cols / sample).max(1) % cols);
        std::hint::black_box(op.vjp(x, y, &seed));
    }
    let per_col = t0.elapsed().as_secs_f64() / sample as f64;
    per_col * cols as f64
}

fn main() {
    let full = is_full_run();
    let hw = if full { 32 } else { 16 };
    let mut rng = seeded_rng(0);

    println!("Table 1 — sparsity of guaranteed zeros and analytical generation speedup");
    println!("(input scale {hw}x{hw}; paper uses 32x32 — pass --full for that)\n");
    let widths = [12usize, 26, 12, 14, 16, 14];
    print_row(
        &[
            "operator".into(),
            "sparsity formula".into(),
            "sparsity".into(),
            "paper (32x32)".into(),
            "analytic (s)".into(),
            "speedup".into(),
        ],
        &widths,
    );

    let mut rows = Vec::new();

    // Convolution: first VGG-11 conv (3→64, 3x3, pad 1).
    let conv = Conv2d::<f32>::new(Conv2dConfig::vgg_style(3, 64, (hw, hw)), &mut rng);
    let x = uniform_tensor(&mut rng, vec![3, hw, hw], 1.0);
    let y = conv.forward(&x);
    let conv_sparsity = conv.guaranteed_sparsity();
    let t_analytic = time_analytic(&conv, &x, &y, 3);
    let t_vjp = time_vjp_extrapolated(&conv, &x, &y, 64);
    let conv_speedup = t_vjp / t_analytic;
    print_row(
        &[
            "conv".into(),
            "1 - hf*wf/(hi*wi)".into(),
            format!("{conv_sparsity:.5}"),
            "0.99157".into(),
            format!("{t_analytic:.2e}"),
            format!("{:.1}x", conv_speedup),
        ],
        &widths,
    );
    rows.push(vec![
        "conv".into(),
        fmt_sig(conv_sparsity),
        "0.99157".into(),
        format!("{t_analytic:.3e}"),
        format!("{t_vjp:.3e}"),
        fmt_sig(conv_speedup),
    ]);

    // ReLU over the conv output volume (64, hw, hw).
    let relu = Relu::new(vec![64, hw, hw]);
    let xr = uniform_tensor(&mut rng, vec![64, hw, hw], 1.0);
    let yr = Operator::<f32>::forward(&relu, &xr);
    let relu_sparsity = Operator::<f32>::guaranteed_sparsity(&relu);
    let t_analytic_r = time_analytic(&relu, &xr, &yr, 5);
    let t_vjp_r = time_vjp_extrapolated(&relu, &xr, &yr, 256);
    let relu_speedup = t_vjp_r / t_analytic_r;
    print_row(
        &[
            "relu".into(),
            "1 - 1/(c*h*w)".into(),
            format!("{relu_sparsity:.5}"),
            "0.99998".into(),
            format!("{t_analytic_r:.2e}"),
            format!("{:.1}x", relu_speedup),
        ],
        &widths,
    );
    rows.push(vec![
        "relu".into(),
        fmt_sig(relu_sparsity),
        "0.99998".into(),
        format!("{t_analytic_r:.3e}"),
        format!("{t_vjp_r:.3e}"),
        fmt_sig(relu_speedup),
    ]);

    // Max-pool over the same volume (2x2, stride 2).
    let pool = MaxPool2d::new(64, (2, 2), (2, 2), (hw, hw));
    let xp = uniform_tensor(&mut rng, vec![64, hw, hw], 1.0);
    let yp = Operator::<f32>::forward(&pool, &xp);
    let pool_sparsity = Operator::<f32>::guaranteed_sparsity(&pool);
    let t_analytic_p = time_analytic(&pool, &xp, &yp, 5);
    let t_vjp_p = time_vjp_extrapolated(&pool, &xp, &yp, 256);
    let pool_speedup = t_vjp_p / t_analytic_p;
    print_row(
        &[
            "maxpool".into(),
            "1 - hf*wf/(ci*hi*wi)".into(),
            format!("{pool_sparsity:.5}"),
            "0.99994".into(),
            format!("{t_analytic_p:.2e}"),
            format!("{:.1}x", pool_speedup),
        ],
        &widths,
    );
    rows.push(vec![
        "maxpool".into(),
        fmt_sig(pool_sparsity),
        "0.99994".into(),
        format!("{t_analytic_p:.3e}"),
        format!("{t_vjp_p:.3e}"),
        fmt_sig(pool_speedup),
    ]);

    let path = write_csv(
        "table1.csv",
        &[
            "operator",
            "sparsity",
            "paper_sparsity_32",
            "analytic_s",
            "vjp_extrapolated_s",
            "speedup",
        ],
        &rows,
    );
    println!("\nwrote {}", path.display());
    println!(
        "\npaper's speedups (Threadripper 1950X vs PyTorch Autograd): conv 8.3e3x, relu 1.2e6x, maxpool 1.5e5x;"
    );
    println!(
        "ours compare a Rust VJP (no framework overhead) against the analytic generator, so the"
    );
    println!("ratios land lower but the ordering (relu > maxpool > conv) and magnitudes hold.");
}
