//! **Figure 4**: the modified Blelloch scan applied to the convolution
//! layers of VGG-11 — prints the level-by-level schedule (which array
//! positions combine at which level of the up- and down-sweeps).
//!
//! Run: `cargo run -p bppsa-bench --bin fig4_schedule`

use bppsa_bench::write_csv;
use bppsa_scan::ScanSchedule;

fn main() {
    // The Figure 4 array: the gradient vector plus the transposed Jacobians
    // of VGG-11's 8 convolution layers → 9 scan elements.
    let len = 9;
    let schedule = ScanSchedule::full(len);
    println!("Figure 4 — Blelloch scan schedule over VGG-11's conv layers");
    println!("array: [∇x_n, J8ᵀ, J7ᵀ, J6ᵀ, J5ᵀ, J4ᵀ, J3ᵀ, J2ᵀ, J1ᵀ]  (len = {len})\n");

    let mut rows = Vec::new();
    let mut level_no = 0usize;
    for (d, level) in schedule.up_levels().iter().enumerate() {
        let pairs: Vec<String> = level.iter().map(|p| format!("({},{})", p.l, p.r)).collect();
        println!(
            "L{level_no} (up-sweep d={d}):   a[r] ← a[l] ⊙ a[r]   pairs: {}",
            pairs.join(" ")
        );
        for p in level {
            rows.push(vec![
                format!("L{level_no}"),
                "up".into(),
                p.l.to_string(),
                p.r.to_string(),
            ]);
        }
        level_no += 1;
    }
    println!(
        "L{level_no} (middle):        serial exclusive scan over block roots {:?} (sets a[n] ← I)",
        schedule.block_roots()
    );
    for &r in schedule.block_roots() {
        rows.push(vec![
            format!("L{level_no}"),
            "middle".into(),
            r.to_string(),
            r.to_string(),
        ]);
    }
    level_no += 1;
    let k = schedule.down_levels().len();
    for (idx, level) in schedule.down_levels().iter().enumerate() {
        let d = k - 1 - idx;
        let pairs: Vec<String> = level.iter().map(|p| format!("({},{})", p.l, p.r)).collect();
        println!(
            "L{level_no} (down-sweep d={d}): t ← a[l]; a[l] ← a[r]; a[r] ← a[r] ⊙ t   pairs: {}",
            pairs.join(" ")
        );
        for p in level {
            rows.push(vec![
                format!("L{level_no}"),
                "down".into(),
                p.l.to_string(),
                p.r.to_string(),
            ]);
        }
        level_no += 1;
    }

    println!("\ntotal combines (work): {}", schedule.combine_count());
    println!("critical-path steps:   {}", schedule.step_count());
    println!(
        "vs linear scan:        {} combines over {} steps",
        ScanSchedule::linear(len).combine_count(),
        ScanSchedule::linear(len).step_count()
    );

    let path = write_csv("fig4_schedule.csv", &["level", "phase", "l", "r"], &rows);
    println!("\nwrote {}", path.display());
}
