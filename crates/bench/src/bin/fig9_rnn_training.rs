//! **Figure 9**: RNN training loss versus wall-clock time — BPPSA against
//! the BPTT baseline.
//!
//! Run: `cargo run -p bppsa-bench --bin fig9_rnn_training --release [--full]`
//!
//! Two parts:
//!
//! 1. **Real execution** (scaled down): trains the Equation-9 RNN on the
//!    bitstream task twice from identical seeds — BPTT vs BPPSA with the
//!    threaded scan executor — and reports the measured loss-vs-time curves.
//!    On a CPU the thread count is far below a GPU's worker count, so the
//!    real-execution speedup is modest or below 1; the point of this part is
//!    the *overlap of loss trajectories* and the correctness of the plumbing.
//! 2. **PRAM simulation** (paper scale: T = 1000, B = 16, 50 epochs of
//!    32000 samples on the RTX 2070 profile): maps the per-iteration loss
//!    sequence onto simulated wall-clock, reproducing the figure's "same
//!    curve, compressed time axis" shape (paper: 2.17× overall).

use bppsa_bench::{is_full_run, write_csv};
use bppsa_models::train::{train_rnn, BackwardMethod};
use bppsa_models::{Adam, BitstreamDataset, VanillaRnn};
use bppsa_pram::{simulate_baseline, simulate_bppsa, DeviceProfile, RnnWorkload};
use bppsa_tensor::init::seeded_rng;

fn main() {
    let full = is_full_run();
    // Real-execution scale (paper: T=1000, B=16, 32000 samples, 50 epochs).
    let (t, b, n, epochs) = if full {
        (1000, 16, 320, 3)
    } else {
        (100, 8, 64, 3)
    };

    println!("Figure 9 — RNN training loss vs wall-clock (BPPSA vs BPTT baseline)");
    println!("part 1: real execution at T={t}, B={b}, {n} samples, {epochs} epochs\n");

    let data = BitstreamDataset::<f32>::generate(n, t, 2024);
    let run = |method: BackwardMethod| {
        let mut rnn = VanillaRnn::<f32>::new(1, 20, 10, &mut seeded_rng(7));
        let mut opt = Adam::new(3e-5);
        train_rnn(&mut rnn, &data, &mut opt, method, b, epochs, None)
    };

    let bptt = run(BackwardMethod::Bp);
    let threads = std::thread::available_parallelism().map_or(4, |p| p.get());
    let _ = threads;
    let scan = run(BackwardMethod::bppsa_pooled());

    println!("iter   loss(BPTT)  t(BPTT)s   loss(BPPSA)  t(BPPSA)s");
    let stride = (bptt.records.len() / 10).max(1);
    for (a, c) in bptt.records.iter().zip(&scan.records).step_by(stride) {
        println!(
            "{:>4}   {:<10.6}  {:<9.3}  {:<11.6}  {:<9.3}",
            a.iteration, a.loss, a.wall_s, c.loss, c.wall_s
        );
    }
    let gap = bptt.max_loss_gap(&scan);
    println!("\nmax per-iteration loss gap: {gap:.3e} (identical trajectories expected)");
    println!(
        "real CPU backward time: BPTT {:.3}s vs BPPSA({threads} threads) {:.3}s",
        bptt.backward_s(),
        scan.backward_s()
    );

    let rows: Vec<Vec<String>> = bptt
        .records
        .iter()
        .zip(&scan.records)
        .map(|(a, c)| {
            vec![
                a.iteration.to_string(),
                format!("{:.6}", a.loss),
                format!("{:.4}", a.wall_s),
                format!("{:.6}", c.loss),
                format!("{:.4}", c.wall_s),
            ]
        })
        .collect();
    write_csv(
        "fig9_real.csv",
        &[
            "iteration",
            "loss_bptt",
            "wall_bptt_s",
            "loss_bppsa",
            "wall_bppsa_s",
        ],
        &rows,
    );

    // Part 2: paper-scale wall-clock from the PRAM cost model.
    println!("\npart 2: PRAM-simulated wall-clock at paper scale (T=1000, B=16, RTX 2070)");
    let wl = RnnWorkload::paper_default();
    let dev = DeviceProfile::rtx_2070();
    let base = simulate_baseline(&wl, &dev);
    let ours = simulate_bppsa(&wl, &dev, None);
    let iters_per_epoch = 32000 / wl.batch;
    let epochs_total = 50;
    let total_iters = iters_per_epoch * epochs_total;
    println!(
        "per-iteration: baseline {:.1}µs (fwd {:.1} + bwd {:.1}) vs BPPSA {:.1}µs (fwd {:.1} + bwd {:.1} + prep {:.1})",
        base.total_s() * 1e6,
        base.forward_s * 1e6,
        base.backward_s * 1e6,
        ours.total_s() * 1e6,
        ours.forward_s * 1e6,
        ours.backward_s * 1e6,
        ours.prep_s * 1e6
    );
    println!(
        "50-epoch training: baseline {:.0}s vs BPPSA {:.0}s → overall speedup {:.2}x (paper: 2.17x);",
        base.total_s() * total_iters as f64,
        ours.total_s() * total_iters as f64,
        base.total_s() / ours.total_s()
    );
    println!(
        "backward speedup {:.2}x (paper: 4.53x)",
        base.backward_s / (ours.backward_s + ours.prep_s)
    );
    println!("the loss-vs-time curve is the baseline curve scaled down on the time axis,");
    println!("exactly the Figure 9 relationship (loss sequences are identical; see part 1).");

    let sim_rows = vec![vec![
        format!("{:.6e}", base.total_s()),
        format!("{:.6e}", ours.total_s()),
        format!("{:.4}", base.total_s() / ours.total_s()),
        format!("{:.4}", base.backward_s / (ours.backward_s + ours.prep_s)),
    ]];
    let path = write_csv(
        "fig9_simulated.csv",
        &[
            "baseline_iter_s",
            "bppsa_iter_s",
            "overall_speedup",
            "backward_speedup",
        ],
        &sim_rows,
    );
    println!("\nwrote {}", path.display());

    assert!(gap < 1e-2, "loss trajectories diverged: {gap}");
    println!("PASS: identical training curves; simulated time axis compressed.");
}
