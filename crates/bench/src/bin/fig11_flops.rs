//! **Figure 11**: FLOPs per step when retraining a 97%-pruned VGG-11 with
//! BPPSA versus the per-"gradient operator" FLOPs of baseline BP — the §4.2
//! static analysis.
//!
//! Run: `cargo run -p bppsa-bench --bin fig11_flops --release [--full]`
//!
//! Builds the VGG-11 feature-extractor chain (convs with *pruned* analytic
//! Jacobians, plus the interleaved ReLU/max-pool Jacobians), applies the
//! paper's hybrid schedule (up-sweep L0–L2, serial middle, truncated
//! down-sweep), and reports every step's (m·n·k, FLOP, kind, critical).
//! Default input scale 16×16 (paper: 32×32 — pass `--full`).

use bppsa_bench::{is_full_run, write_csv};
use bppsa_core::flops::{
    analyze_baseline_flops, analyze_scan_flops, critical_path_flops, total_flops, StepKind,
};
use bppsa_core::{BppsaOptions, JacobianChain, ScanElement};
use bppsa_models::prune::prune_operator;
use bppsa_models::vgg11_convs;
use bppsa_ops::{MaxPool2d, Operator, Relu};
use bppsa_scan::PhaseKind;
use bppsa_tensor::init::{seeded_rng, uniform_tensor, uniform_vector};
use bppsa_tensor::Tensor;

fn main() {
    let full = is_full_run();
    let scale = if full { 32 } else { 16 };
    println!("Figure 11 — per-step FLOPs, pruned VGG-11 retraining (input {scale}x{scale})");
    println!("pruning 97% of conv weights (See et al.), hybrid schedule k=3\n");

    let mut rng = seeded_rng(42);
    let mut convs = vgg11_convs::<f32>(scale, &mut rng);
    for conv in &mut convs {
        prune_operator(conv, 0.97);
    }

    // Forward through conv→relu→(pool) to collect activations, building the
    // chain as we go: conv Jacobians via the pruned generator, relu/pool via
    // the standard analytic generators (their patterns are already tiny).
    let pool_after = [true, true, false, true, false, true, false, true];
    let mut x: Tensor<f32> = uniform_tensor(&mut rng, vec![3, scale, scale], 1.0);
    let mut elements: Vec<ScanElement<f32>> = Vec::new();
    for (i, conv) in convs.iter().enumerate() {
        let y = conv.forward(&x);
        elements.push(ScanElement::Sparse(conv.transposed_jacobian_pruned()));
        let shape = conv.output_shape().to_vec();
        let relu = Relu::new(shape.clone());
        let y_relu = Operator::<f32>::forward(&relu, &y);
        elements.push(ScanElement::Sparse(
            relu.transposed_jacobian(&y, &y_relu).pruned(),
        ));
        x = y_relu;
        if pool_after[i] && shape[1] >= 2 {
            let pool = MaxPool2d::new(shape[0], (2, 2), (2, 2), (shape[1], shape[2]));
            let y_pool = Operator::<f32>::forward(&pool, &x);
            elements.push(ScanElement::Sparse(
                pool.transposed_jacobian(&x, &y_pool).pruned(),
            ));
            x = y_pool;
        }
    }

    let seed = uniform_vector(&mut rng, x.numel(), 1.0);
    let mut chain = JacobianChain::new(seed);
    for e in elements {
        chain.push(e);
    }
    chain.validate();
    println!(
        "chain: {} Jacobians (+ seed), scan array length {}",
        chain.num_layers(),
        chain.num_layers() + 1
    );

    let opts = BppsaOptions::serial().hybrid(3);
    let steps = analyze_scan_flops(&chain, opts);
    let baseline = analyze_baseline_flops(&chain);

    println!("\nBPPSA steps (phase/level, kind, dense m·n·k, sparse FLOP, critical):");
    for s in &steps {
        let phase = match s.phase {
            PhaseKind::UpSweep => "up",
            PhaseKind::Middle => "mid",
            PhaseKind::DownSweep => "down",
        };
        let kind = match s.kind {
            StepKind::MatVec => "mv",
            StepKind::MatMat => "mm",
        };
        println!(
            "  {phase:>4} L{:<2} {kind}  mnk={:<14} flops={:<12} {}",
            s.level,
            s.dense_mnk,
            s.flops,
            if s.critical { "critical" } else { "" }
        );
    }

    println!("\nbaseline BP gradient operators (all critical):");
    for (i, s) in baseline.iter().enumerate() {
        println!(
            "  layer {:>2}  mv  mnk={:<14} flops={}",
            i, s.dense_mnk, s.flops
        );
    }

    let max_scan = steps.iter().map(|s| s.flops).max().unwrap_or(0);
    let max_base = baseline.iter().map(|s| s.flops).max().unwrap_or(0);
    println!("\nsummary:");
    println!(
        "  BPPSA:    {} steps, total {:.3e} FLOPs, critical path {:.3e}, max step {:.3e}",
        steps.len(),
        total_flops(&steps) as f64,
        critical_path_flops(&steps) as f64,
        max_scan as f64
    );
    println!(
        "  baseline: {} steps, total {:.3e} FLOPs (all sequential), max step {:.3e}",
        baseline.len(),
        total_flops(&baseline) as f64,
        max_base as f64
    );
    println!(
        "  per-step ratio (max BPPSA / max baseline): {:.2}",
        max_scan as f64 / max_base.max(1) as f64
    );
    let max_mnk = steps.iter().map(|s| s.dense_mnk).max().unwrap_or(1);
    println!(
        "  sparsity win: largest step does {:.1e} FLOPs where dense would need {:.1e} (x{:.0} less)",
        max_scan as f64,
        max_mnk as f64,
        max_mnk as f64 / max_scan.max(1) as f64
    );
    println!("\nshape vs paper's Figure 11: the scatter of BPPSA's steps (mm circles at large");
    println!("m·n·k, mv circles small) sits orders of magnitude below the dense diagonal and");
    println!("within the same FLOP range as the baseline's gradient operators, so reducing");
    println!("P_Blelloch via sparsity makes the log-depth schedule's critical path pay off.");

    // Extension beyond the paper: price both FLOP profiles on the PRAM
    // device models (per-sample; one scan per sample in a mini-batch).
    println!("\nPRAM-priced backward time for this chain (extension — the paper stops at FLOPs):");
    let to_groups = |records: &[bppsa_core::flops::StepFlops], serial: bool| {
        use std::collections::BTreeMap;
        if serial {
            return vec![bppsa_pram::StepGroup {
                parallel: false,
                op_flops: records.iter().map(|r| r.flops).collect(),
            }];
        }
        let mut by_level: BTreeMap<(u8, usize), Vec<u64>> = BTreeMap::new();
        let mut order: Vec<(u8, usize, bool)> = Vec::new();
        for r in records {
            let phase_id = match r.phase {
                PhaseKind::UpSweep => 0u8,
                PhaseKind::Middle => 1,
                PhaseKind::DownSweep => 2,
            };
            if !order.iter().any(|&(p, l, _)| p == phase_id && l == r.level) {
                order.push((phase_id, r.level, phase_id != 1));
            }
            by_level
                .entry((phase_id, r.level))
                .or_default()
                .push(r.flops);
        }
        order
            .into_iter()
            .map(|(p, l, parallel)| bppsa_pram::StepGroup {
                parallel,
                op_flops: by_level[&(p, l)].clone(),
            })
            .collect()
    };
    for dev in [
        bppsa_pram::DeviceProfile::rtx_2070(),
        bppsa_pram::DeviceProfile::rtx_2080ti(),
    ] {
        let t_scan = bppsa_pram::simulate_step_groups(&to_groups(&steps, false), &dev);
        let t_base = bppsa_pram::simulate_step_groups(&to_groups(&baseline, true), &dev);
        println!(
            "  {}: baseline {:.1} µs vs BPPSA {:.1} µs → {:.2}x",
            dev.name,
            t_base * 1e6,
            t_scan * 1e6,
            t_base / t_scan
        );
    }
    println!(
        "at n = {} chain elements the scan's extra matrix–matrix work is not yet repaid —",
        chain.num_layers()
    );
    println!("consistent with the paper, whose VGG-11 claim is per-step cost parity (so that");
    println!("scalability in n is \"guaranteed algorithmically\"), not a wall-clock win at n≈21;");
    println!("the wall-clock wins appear in the deep-chain RNN regime (Figures 9–10).");

    let mut rows: Vec<Vec<String>> = steps
        .iter()
        .map(|s| {
            vec![
                "bppsa".into(),
                format!("{:?}", s.phase),
                s.level.to_string(),
                format!("{:?}", s.kind),
                s.dense_mnk.to_string(),
                s.flops.to_string(),
                s.critical.to_string(),
            ]
        })
        .collect();
    rows.extend(baseline.iter().map(|s| {
        vec![
            "baseline".into(),
            "Sequential".into(),
            "0".into(),
            "MatVec".into(),
            s.dense_mnk.to_string(),
            s.flops.to_string(),
            "true".into(),
        ]
    }));
    let path = write_csv(
        "fig11_flops.csv",
        &[
            "method",
            "phase",
            "level",
            "kind",
            "dense_mnk",
            "flops",
            "critical",
        ],
        &rows,
    );
    println!("\nwrote {}", path.display());
}
