//! **Figure 6**: the sparsity patterns of transposed Jacobians for
//! convolution, max-pooling, and ReLU — rendered as PGM images (and ASCII
//! art for small instances) under `results/`.
//!
//! Run: `cargo run -p bppsa-bench --bin fig6_patterns`

use bppsa_bench::results_dir;
use bppsa_ops::{Conv2d, Conv2dConfig, MaxPool2d, Operator, Relu};
use bppsa_sparse::Csr;
use bppsa_tensor::init::{seeded_rng, uniform_tensor};
use std::io::Write as _;

/// Writes a binary-threshold PGM of the structural pattern (dark = stored).
fn write_pgm(name: &str, m: &Csr<f32>) -> std::path::PathBuf {
    let path = results_dir().join(name);
    let (rows, cols) = m.shape();
    let mut img = vec![255u8; rows * cols];
    for i in 0..rows {
        for &j in m.row_indices(i) {
            img[i * cols + j as usize] = 0;
        }
    }
    let mut f = std::fs::File::create(&path).expect("create pgm");
    write!(f, "P5\n{cols} {rows}\n255\n").expect("header");
    f.write_all(&img).expect("pixels");
    path
}

/// ASCII-art rendering for small matrices.
fn ascii(m: &Csr<f32>) -> String {
    let (rows, cols) = m.shape();
    let mut out = String::new();
    for i in 0..rows {
        let set: std::collections::HashSet<u32> = m.row_indices(i).iter().copied().collect();
        for j in 0..cols as u32 {
            out.push(if set.contains(&j) { '#' } else { '.' });
        }
        out.push('\n');
    }
    out
}

fn main() {
    let mut rng = seeded_rng(0);
    println!("Figure 6 — transposed-Jacobian sparsity patterns\n");

    // (a) Convolution: 2→2 channels, 3x3 pad 1 on 8x8.
    let conv = Conv2d::<f32>::new(Conv2dConfig::vgg_style(2, 2, (8, 8)), &mut rng);
    let xc = uniform_tensor(&mut rng, vec![2, 8, 8], 1.0);
    let jc = conv.transposed_jacobian(&xc, &conv.forward(&xc));
    let pc = write_pgm("fig6_conv.pgm", &jc);
    println!(
        "conv     {}x{} nnz={} sparsity={:.5}  → {}",
        jc.rows(),
        jc.cols(),
        jc.nnz(),
        jc.sparsity(),
        pc.display()
    );

    // (b) Max-pooling: 1 channel, 2x2 stride 2 on 8x8.
    let pool = MaxPool2d::new(1, (2, 2), (2, 2), (8, 8));
    let xp = uniform_tensor(&mut rng, vec![1, 8, 8], 1.0);
    let jp: Csr<f32> = pool.transposed_jacobian(&xp, &Operator::<f32>::forward(&pool, &xp));
    let pp = write_pgm("fig6_maxpool.pgm", &jp);
    println!(
        "maxpool  {}x{} nnz={} sparsity={:.5}  → {}",
        jp.rows(),
        jp.cols(),
        jp.nnz(),
        jp.sparsity(),
        pp.display()
    );

    // (c) ReLU: 64-element volume → pure diagonal.
    let relu = Relu::new(vec![1, 8, 8]);
    let xr = uniform_tensor(&mut rng, vec![1, 8, 8], 1.0);
    let jr: Csr<f32> = relu.transposed_jacobian(&xr, &Operator::<f32>::forward(&relu, &xr));
    let pr = write_pgm("fig6_relu.pgm", &jr);
    println!(
        "relu     {}x{} nnz={} sparsity={:.5}  → {}",
        jr.rows(),
        jr.cols(),
        jr.nnz(),
        jr.sparsity(),
        pr.display()
    );

    // Small ASCII illustrations (4x4 single-channel instances).
    println!("\nmaxpool 2x2/2 on 1x4x4 (rows = inputs, cols = outputs):");
    let pool_small = MaxPool2d::new(1, (2, 2), (2, 2), (4, 4));
    let xs = uniform_tensor(&mut rng, vec![1, 4, 4], 1.0);
    let js: Csr<f32> =
        pool_small.transposed_jacobian(&xs, &Operator::<f32>::forward(&pool_small, &xs));
    print!("{}", ascii(&js));

    println!("\nrelu on 8 elements (diagonal):");
    let relu_small = Relu::new(vec![8]);
    let xr8 = uniform_tensor(&mut rng, vec![8], 1.0);
    let jr8: Csr<f32> =
        relu_small.transposed_jacobian(&xr8, &Operator::<f32>::forward(&relu_small, &xr8));
    print!("{}", ascii(&jr8));
}
