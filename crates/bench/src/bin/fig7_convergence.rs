//! **Figure 7**: training and test loss per iteration for LeNet-5, trained
//! once with the classic-BP baseline and once with BPPSA from identical
//! seeds. The two curves must overlap (§3.5: BPPSA is a reconstruction of
//! BP, not an approximation).
//!
//! Run: `cargo run -p bppsa-bench --bin fig7_convergence --release [--full]`
//!
//! Paper config: LeNet-5 on CIFAR-10, B = 256, SGD(lr = 0.001, μ = 0.9),
//! 8000+ iterations. Default here: synthetic CIFAR (documented substitution),
//! B = 32, 60 iterations on the full 32×32 LeNet-5; `--full` raises the
//! batch and iteration counts.

use bppsa_bench::{is_full_run, write_csv};
use bppsa_core::{BppsaOptions, JacobianRepr};
use bppsa_models::train::{evaluate_network, train_network_classifier, BackwardMethod, TrainLog};
use bppsa_models::{lenet5, SyntheticCifar};
use bppsa_tensor::init::seeded_rng;

fn run(
    method: BackwardMethod,
    data: &SyntheticCifar<f32>,
    batch: usize,
    iters: usize,
) -> (TrainLog, f64) {
    let mut net = lenet5::<f32>(&mut seeded_rng(1234));
    let mut opts = bppsa_models::train::sgd_per_layer(&net, 0.001, 0.9);
    let log = train_network_classifier(
        &mut net,
        data,
        &mut opts,
        method,
        batch,
        usize::MAX,
        Some(iters),
    );
    let acc = evaluate_network(&net, data);
    (log, acc)
}

fn main() {
    let full = is_full_run();
    let (n_samples, batch, iters) = if full {
        (2048, 256, 200)
    } else {
        (256, 32, 60)
    };
    println!("Figure 7 — LeNet-5 convergence: baseline BP vs BPPSA (identical seeds)");
    println!("synthetic CIFAR substitution; {n_samples} samples, B={batch}, {iters} iterations\n");

    let data = SyntheticCifar::<f32>::generate(n_samples, 32, 0.3, 99);

    println!("training with baseline BP …");
    let (bp_log, bp_acc) = run(BackwardMethod::Bp, &data, batch, iters);
    println!("training with BPPSA (sparse Jacobians, Blelloch scan) …");
    let (scan_log, scan_acc) = run(
        BackwardMethod::Bppsa {
            opts: BppsaOptions::serial(),
            repr: JacobianRepr::Sparse,
        },
        &data,
        batch,
        iters,
    );

    let gap = bp_log.max_loss_gap(&scan_log);
    println!("\niter   loss(BP)    loss(BPPSA)  |diff|");
    for (a, b) in bp_log.records.iter().zip(&scan_log.records) {
        if a.iteration % (iters / 12).max(1) == 0 || a.iteration == iters - 1 {
            println!(
                "{:>4}   {:<10.6}  {:<11.6}  {:.2e}",
                a.iteration,
                a.loss,
                b.loss,
                (a.loss - b.loss).abs()
            );
        }
    }
    println!("\nmax per-iteration loss gap: {gap:.3e}  (paper: curves overlap)");
    println!("final train accuracy: BP {bp_acc:.3} vs BPPSA {scan_acc:.3}");
    println!(
        "loss trajectory: {:.4} → {:.4} (decreasing: {})",
        bp_log.records[0].loss,
        bp_log.final_loss(),
        bp_log.final_loss() < bp_log.records[0].loss
    );

    let rows: Vec<Vec<String>> = bp_log
        .records
        .iter()
        .zip(&scan_log.records)
        .map(|(a, b)| {
            vec![
                a.iteration.to_string(),
                format!("{:.6}", a.loss),
                format!("{:.6}", b.loss),
            ]
        })
        .collect();
    let path = write_csv(
        "fig7_convergence.csv",
        &["iteration", "loss_bp", "loss_bppsa"],
        &rows,
    );
    println!("\nwrote {}", path.display());

    assert!(gap < 5e-3, "BPPSA diverged from BP: gap {gap}");
    println!("PASS: BPPSA reproduces the baseline training trajectory.");
}
