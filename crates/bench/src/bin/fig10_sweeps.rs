//! **Figure 10 (a–d)**: backward and overall speedups of BPPSA over the
//! baseline as functions of sequence length `T` (a, b) and batch size `B`
//! (c, d), on the RTX 2070 and RTX 2080 Ti PRAM profiles.
//!
//! Run: `cargo run -p bppsa-bench --bin fig10_sweeps --release`
//!
//! A real-threaded CPU validation sweep is included: it executes the actual
//! scan with 1/2/4/8 threads on a small workload and checks that more
//! workers shorten the backward pass (the mechanism behind the figure).

use bppsa_bench::write_csv;
use bppsa_core::{bppsa_backward, BppsaOptions};
use bppsa_pram::{simulate_speedups, DeviceProfile, RnnWorkload};
use bppsa_tensor::init::seeded_rng;
use std::time::Instant;

const T_SWEEP: [usize; 8] = [10, 30, 100, 300, 1000, 3000, 10000, 30000];
const B_SWEEP: [usize; 8] = [256, 128, 64, 32, 16, 8, 4, 2];

fn main() {
    let devices = [DeviceProfile::rtx_2070(), DeviceProfile::rtx_2080ti()];
    let mut rows = Vec::new();

    println!("Figure 10a/10b — speedup vs sequence length T (B = 16)");
    println!(
        "{:>8}  {:>16} {:>10}  {:>16} {:>10}",
        "T", "2070 bwd", "overall", "2080Ti bwd", "overall"
    );
    for &t in &T_SWEEP {
        let w = RnnWorkload {
            seq_len: t,
            batch: 16,
            hidden: 20,
        };
        let s: Vec<_> = devices.iter().map(|d| simulate_speedups(&w, d)).collect();
        println!(
            "{:>8}  {:>15.2}x {:>9.2}x  {:>15.2}x {:>9.2}x",
            t, s[0].backward, s[0].overall, s[1].backward, s[1].overall
        );
        for (d, sp) in devices.iter().zip(&s) {
            rows.push(vec![
                "T".into(),
                d.name.clone(),
                t.to_string(),
                "16".into(),
                format!("{:.4}", sp.backward),
                format!("{:.4}", sp.overall),
            ]);
        }
    }
    println!("paper: rises while T is comparable to p, then bounded by p;");
    println!("       2070 peaks ≈4.5–5.5x bwd / ≈2.2x overall; 2080Ti higher and later.\n");

    println!("Figure 10c/10d — speedup vs batch size B (T = 1000)");
    println!(
        "{:>8}  {:>16} {:>10}  {:>16} {:>10}",
        "B", "2070 bwd", "overall", "2080Ti bwd", "overall"
    );
    for &b in &B_SWEEP {
        let w = RnnWorkload {
            seq_len: 1000,
            batch: b,
            hidden: 20,
        };
        let s: Vec<_> = devices.iter().map(|d| simulate_speedups(&w, d)).collect();
        println!(
            "{:>8}  {:>15.2}x {:>9.2}x  {:>15.2}x {:>9.2}x",
            b, s[0].backward, s[0].overall, s[1].backward, s[1].overall
        );
        for (d, sp) in devices.iter().zip(&s) {
            rows.push(vec![
                "B".into(),
                d.name.clone(),
                "1000".into(),
                b.to_string(),
                format!("{:.4}", sp.backward),
                format!("{:.4}", sp.overall),
            ]);
        }
    }
    println!("paper: speedup grows as B shrinks (more effective workers per scan);");
    println!("       max backward speedup 8.8x on 2080Ti (abstract).\n");

    let path = write_csv(
        "fig10_sweeps.csv",
        &[
            "sweep",
            "device",
            "seq_len",
            "batch",
            "backward_speedup",
            "overall_speedup",
        ],
        &rows,
    );
    println!("wrote {}", path.display());

    // Real execution validation: the actual scan gets faster with a worker
    // pool once the per-combine work is large enough to amortize
    // synchronization — the p-vs-per-step-cost trade-off of §3.6 on a CPU.
    println!("\nreal-execution validation (serial vs persistent worker pool):");
    let mut timings = Vec::new();
    for (label, h, t) in [
        ("RNN-sized (h=20, T=512)", 20usize, 512usize),
        ("wide (h=64, T=256)", 64, 256),
    ] {
        let mut rng = seeded_rng(3);
        let mut chain = bppsa_core::JacobianChain::new(bppsa_tensor::init::uniform_vector::<f32>(
            &mut rng, h, 1.0,
        ));
        for _ in 0..t {
            chain.push(bppsa_core::ScanElement::Dense(
                bppsa_tensor::init::uniform_matrix(&mut rng, h, h, 0.2),
            ));
        }
        let best_for = |opts: BppsaOptions| {
            let _ = bppsa_backward(&chain, opts);
            (0..3)
                .map(|_| {
                    let t0 = Instant::now();
                    std::hint::black_box(bppsa_backward(&chain, opts));
                    t0.elapsed().as_secs_f64()
                })
                .fold(f64::INFINITY, f64::min)
        };
        let serial = best_for(BppsaOptions::serial());
        let pooled = best_for(BppsaOptions::pooled());
        println!(
            "  {label}: serial {:.2} ms vs pooled {:.2} ms ({:.2}x)",
            serial * 1e3,
            pooled * 1e3,
            serial / pooled
        );
        timings.push((serial, pooled));
    }
    if timings.iter().any(|&(s, p)| p < s) {
        println!("PASS: real parallel execution shortens the scan where per-step work");
        println!("amortizes synchronization; the PRAM sweep models GPU-scale workers.");
    } else {
        println!("NOTE: CPU worker counts are far below the GPU scale the figure needs;");
        println!("the PRAM sweep above supplies that scale.");
    }
}
