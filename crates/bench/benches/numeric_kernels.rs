//! Criterion bench — numeric-kernel density sweep: the same planned SpGEMM
//! executed by each of the three [`NumericKernel`] modes (gather program,
//! planned Gustavson, dense register-blocked panel), forced via
//! [`SymbolicProduct::plan_with_mode`], across three density points:
//!
//! * `1024x1024/d0.01` — very sparse, the gather program's home turf;
//! * `1024x1024/d0.08` — the `spgemm_row_parallel` acceptance point, where
//!   the dense panel should overtake gather;
//! * `512x512/d0.25`  — dense-ish, squarely inside the dense microkernel's
//!   auto-selection window (`KERNEL_DENSE_MIN_DENSITY`).
//!
//! All measurements are steady-state [`SymbolicProduct::execute_into_with`]
//! iterations over a pre-built [`KernelScratch`] — zero allocation in the
//! timed region for every mode, so the sweep compares arithmetic schedules,
//! not allocator behavior.
//!
//! Set `CRITERION_JSON_DIR=<dir>` to emit `numeric_kernels.json` (merged
//! into `BENCH_planned_scan.json` at the workspace root; the JSON's
//! `environment` record includes `available_parallelism`).

use bppsa_bench::random_csr;
use bppsa_sparse::{Csr, KernelMode, SymbolicProduct};
use bppsa_tensor::init::seeded_rng;
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

const MODES: [(KernelMode, &str); 3] = [
    (KernelMode::Gather, "gather"),
    (KernelMode::Gustavson, "gustavson"),
    (KernelMode::Dense, "dense"),
];

fn bench_numeric_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("numeric_kernels");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    // Threads matter for none of these (all serial execute_into_with), but
    // the recorded baseline should say what machine produced it.
    println!(
        "bench numeric_kernels: available_parallelism = {}",
        std::thread::available_parallelism().map_or(0, |n| n.get())
    );

    for (n, density) in [(1024usize, 0.01f64), (1024, 0.08), (512, 0.25)] {
        let mut rng = seeded_rng(55);
        let a = random_csr(&mut rng, n, n, density);
        let b = random_csr(&mut rng, n, n, density);
        for (mode, name) in MODES {
            let plan = SymbolicProduct::plan_with_mode(&a.pattern(), &b.pattern(), mode);
            assert_eq!(format!("{:?}", plan.kernel()).to_lowercase(), name);
            let mut out = Csr::from_pattern(plan.out_pattern().clone());
            let mut scratch = plan.scratch::<f64>(1);
            plan.execute_into_with(&a, &b, &mut out, &mut scratch);
            group.bench_function(format!("{n}x{n}/d{density}/{name}"), |bch| {
                bch.iter(|| {
                    plan.execute_into_with(std::hint::black_box(&a), &b, &mut out, &mut scratch)
                })
            });
        }
    }

    group.finish();
}

criterion_group!(benches, bench_numeric_kernels);
criterion_main!(benches);
