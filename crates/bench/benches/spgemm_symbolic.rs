//! Criterion bench — ablation of §3.3's key optimization: because Jacobian
//! sparsity patterns are deterministic, SpGEMM's symbolic phase can be
//! hoisted out of the training loop. Compares the generic (symbolic +
//! numeric every call, cuSPARSE-style) path against the planned
//! (numeric-only) path on real conv-Jacobian patterns.

use bppsa_models::prune::prune_operator;
use bppsa_ops::{Conv2d, Conv2dConfig, Operator};
use bppsa_sparse::{spgemm, Csr, SymbolicProduct};
use bppsa_tensor::init::{seeded_rng, uniform_tensor};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

/// Two chainable conv transposed Jacobians: the product `J1ᵀ ⊙ J2ᵀ = J2ᵀ·J1ᵀ`
/// is what an up-sweep pair computes… here we return operands already
/// ordered for a plain `spgemm(a, b)` call.
fn conv_jacobians(prune: bool) -> (Csr<f32>, Csr<f32>) {
    let mut rng = seeded_rng(3);
    let mut c1 = Conv2d::<f32>::new(Conv2dConfig::vgg_style(3, 8, (12, 12)), &mut rng);
    let mut c2 = Conv2d::<f32>::new(Conv2dConfig::vgg_style(8, 8, (12, 12)), &mut rng);
    if prune {
        prune_operator(&mut c1, 0.9);
        prune_operator(&mut c2, 0.9);
    }
    let x1 = uniform_tensor(&mut rng, vec![3, 12, 12], 1.0);
    let y1 = c1.forward(&x1);
    let y2 = c2.forward(&y1);
    let j1 = c1.transposed_jacobian(&x1, &y1); // (3·144) × (8·144)
    let j2 = c2.transposed_jacobian(&y1, &y2); // (8·144) × (8·144)
    (j1, j2)
}

fn bench_spgemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("spgemm_symbolic");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));

    for (label, prune) in [("guaranteed_pattern", false), ("pruned90", true)] {
        let (a, b) = conv_jacobians(prune);
        let (a, b) = if prune {
            (a.pruned(), b.pruned())
        } else {
            (a, b)
        };
        group.bench_function(format!("generic/{label}"), |bench| {
            bench.iter(|| spgemm(std::hint::black_box(&a), std::hint::black_box(&b)))
        });
        let plan = SymbolicProduct::plan(&a.pattern(), &b.pattern());
        group.bench_function(format!("planned_numeric/{label}"), |bench| {
            bench
                .iter(|| plan.execute_unchecked(std::hint::black_box(&a), std::hint::black_box(&b)))
        });
        group.bench_function(format!("plan_construction/{label}"), |bench| {
            bench.iter(|| SymbolicProduct::plan(&a.pattern(), &b.pattern()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_spgemm);
criterion_main!(benches);
