//! Criterion bench — ablation of the §5.2 hybrid schedule: sweep the
//! up-sweep cutoff `k` from 0 (linear scan) to full Blelloch on a sparse
//! pruned-conv chain, where products densify level by level and the cutoff
//! trades tree depth against per-step cost.

use bppsa_core::{bppsa_backward, BppsaOptions, JacobianChain, ScanElement};
use bppsa_models::prune::prune_operator;
use bppsa_ops::{Conv2d, Conv2dConfig, Operator, Relu};
use bppsa_tensor::init::{seeded_rng, uniform_tensor, uniform_vector};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

/// A pruned conv/relu chain: 8 conv layers at constant width, 97% pruned.
fn pruned_chain() -> JacobianChain<f32> {
    let mut rng = seeded_rng(11);
    let hw = 8usize;
    let ch = 8usize;
    let mut chain_elems = Vec::new();
    let mut x = uniform_tensor(&mut rng, vec![ch, hw, hw], 1.0);
    for _ in 0..8 {
        let mut conv = Conv2d::<f32>::new(Conv2dConfig::vgg_style(ch, ch, (hw, hw)), &mut rng);
        prune_operator(&mut conv, 0.97);
        let y = conv.forward(&x);
        chain_elems.push(ScanElement::Sparse(conv.transposed_jacobian_pruned()));
        let relu = Relu::new(vec![ch, hw, hw]);
        let y_relu = Operator::<f32>::forward(&relu, &y);
        chain_elems.push(ScanElement::Sparse(relu.transposed_jacobian(&y, &y_relu)));
        x = y_relu;
    }
    let seed = uniform_vector(&mut rng, ch * hw * hw, 1.0);
    let mut chain = JacobianChain::new(seed);
    for e in chain_elems {
        chain.push(e);
    }
    chain
}

fn bench_hybrid(c: &mut Criterion) {
    let mut group = c.benchmark_group("hybrid_cutoff");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    let chain = pruned_chain();
    for k in [0usize, 1, 2, 3, 4] {
        group.bench_with_input(BenchmarkId::new("up_levels", k), &k, |b, &k| {
            b.iter(|| {
                bppsa_backward(
                    std::hint::black_box(&chain),
                    BppsaOptions::serial().hybrid(k),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_hybrid);
criterion_main!(benches);
