//! Criterion bench — the RNN backward pass three ways: BPTT (baseline),
//! BPPSA with the serial executor, and BPPSA with the threaded executor
//! (§4.1's workload at CPU scale).

use bppsa_core::BppsaOptions;
use bppsa_models::{BitstreamDataset, VanillaRnn};
use bppsa_tensor::init::seeded_rng;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_rnn_backward(c: &mut Criterion) {
    let mut group = c.benchmark_group("rnn_backward");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));

    let rnn = VanillaRnn::<f32>::new(1, 20, 10, &mut seeded_rng(1));
    for t in [64usize, 256] {
        let data = BitstreamDataset::<f32>::generate(1, t, 2);
        let sample = data.sample(0);
        let states = rnn.forward(&sample.bits);
        let (_, seed, g_logits) = rnn.loss_and_seed(&states, sample.label);

        group.bench_with_input(BenchmarkId::new("bptt", t), &t, |b, _| {
            b.iter(|| rnn.backward_bptt(&sample.bits, &states, &seed, &g_logits))
        });
        group.bench_with_input(BenchmarkId::new("bppsa_serial", t), &t, |b, _| {
            b.iter(|| {
                rnn.backward_bppsa(
                    &sample.bits,
                    &states,
                    &seed,
                    &g_logits,
                    BppsaOptions::serial(),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("bppsa_threaded4", t), &t, |b, _| {
            b.iter(|| {
                rnn.backward_bppsa(
                    &sample.bits,
                    &states,
                    &seed,
                    &g_logits,
                    BppsaOptions::threaded(4),
                )
            })
        });
        // Chain construction alone (the "prep" cost the paper folds into
        // BPPSA's backward time).
        group.bench_with_input(BenchmarkId::new("chain_build", t), &t, |b, _| {
            b.iter(|| rnn.build_chain(&states, &seed))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rnn_backward);
criterion_main!(benches);
