//! Criterion bench: scan algorithm baselines (§3.6's step/work trade-off).
//!
//! Compares, on chains of dense h×h Jacobians:
//! * the linear scan (Θ(n) steps — BP's shape),
//! * the full modified Blelloch scan (Θ(log n) steps, Θ(n) work),
//! * Hillis–Steele (Θ(log n) steps, Θ(n log n) work).
//!
//! On a CPU with few cores the serial Blelloch does ~2× the baseline's FLOPs
//! (matmuls vs matvecs), so wall-clock favors the baseline — the figures'
//! speedups come from worker counts a CPU does not have (see `bppsa-pram`).
//! What this bench pins down is the *work* relationship between the
//! algorithms on identical substrates.

use bppsa_core::{bppsa_backward, linear_backward, BppsaOptions, JacobianChain, ScanElement};
use bppsa_scan::{hillis_steele_exclusive, ScanOp};
use bppsa_tensor::init::{seeded_rng, uniform_matrix, uniform_vector};
use bppsa_tensor::Matrix;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn chain(t: usize, h: usize) -> JacobianChain<f32> {
    let mut rng = seeded_rng(7);
    let mut chain = JacobianChain::new(uniform_vector(&mut rng, h, 1.0));
    for _ in 0..t {
        chain.push(ScanElement::Dense(uniform_matrix(&mut rng, h, h, 0.5)));
    }
    chain
}

struct MatMulOp;
impl ScanOp<Matrix<f32>> for MatMulOp {
    fn combine(&self, a: &Matrix<f32>, b: &Matrix<f32>) -> Matrix<f32> {
        b.matmul(a)
    }
    fn identity(&self) -> Matrix<f32> {
        Matrix::identity(8)
    }
}

fn bench_scans(c: &mut Criterion) {
    let mut group = c.benchmark_group("scan_baselines");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));

    for t in [64usize, 256] {
        let ch = chain(t, 16);
        group.bench_with_input(BenchmarkId::new("linear", t), &ch, |b, ch| {
            b.iter(|| linear_backward(std::hint::black_box(ch)))
        });
        group.bench_with_input(BenchmarkId::new("blelloch_serial", t), &ch, |b, ch| {
            b.iter(|| bppsa_backward(std::hint::black_box(ch), BppsaOptions::serial()))
        });
        group.bench_with_input(BenchmarkId::new("blelloch_threaded4", t), &ch, |b, ch| {
            b.iter(|| bppsa_backward(std::hint::black_box(ch), BppsaOptions::threaded(4)))
        });

        // Hillis–Steele over raw matrices (work-inefficient comparison).
        let mats: Vec<Matrix<f32>> = {
            let mut rng = seeded_rng(9);
            (0..t)
                .map(|_| uniform_matrix(&mut rng, 8, 8, 0.5))
                .collect()
        };
        group.bench_with_input(
            BenchmarkId::new("hillis_steele_8x8", t),
            &mats,
            |b, mats| {
                b.iter(|| {
                    let mut m = mats.clone();
                    hillis_steele_exclusive(&MatMulOp, &mut m);
                    m
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_scans);
criterion_main!(benches);
