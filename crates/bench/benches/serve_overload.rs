//! Criterion bench — `serve_overload`: the cost and precision of the
//! overload-robustness layer under sustained pressure.
//!
//! * `shed_precision/deadline_us_*` — one persistent lane whose every flush
//!   carries a seeded 500 µs stall, so the EWMA flush estimator stays
//!   trained at ~stall scale across the whole run. Each iteration drives a
//!   wave of `submit_with_delay` calls at one of two deadline classes: a
//!   200 µs budget the trained estimator must refuse whenever the queue is
//!   non-empty (the refusal path is the measured cost — a cheap synchronous
//!   `Infeasible` with the chain handed back), and a 20 ms budget that
//!   always clears the prediction (the admit path). The realized refusal
//!   precision per class — infeasible refusals over attempts, from the
//!   service's own counters — prints once per config: the doomed class
//!   should shed heavily, the feasible class not at all.
//! * `brownout_cycle/delay_us_*` — a persistent service with single-poll
//!   brownout hysteresis on a fast supervision cadence. Each iteration is
//!   one full degradation round trip: flood the lane with non-blocking
//!   submits until depth-shedding drives the level down to
//!   `DeclineColdShapes`, drain, then idle until the supervisor walks the
//!   level back to `Normal`. The measured time is the end-to-end
//!   detect → degrade → recover latency as the traffic's deadline class
//!   varies the flush pacing underneath.
//!
//! Both scenarios record `available_parallelism` via the shim criterion's
//! environment record; on a 1-core container the cycle times are dominated
//! by supervisor poll cadence, not execution overlap.

use bppsa_bench::random_csr;
use bppsa_core::{JacobianChain, ScanElement};
use bppsa_serve::{
    BppsaService, BrownoutLevel, BrownoutPolicy, FaultInjector, FaultRates, FeasibilityPolicy,
    ServeConfig, ShedPolicy, SubmitError, Ticket, WatchdogPolicy,
};
use bppsa_tensor::init::{seeded_rng, uniform_vector};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::Rng;
use std::time::{Duration, Instant};

/// Requests per measured wave.
const WAVE: usize = 24;

/// An RNN-shaped chain: `n` timesteps of small square Jacobians.
fn chain(n: usize, width: usize, rng: &mut StdRng) -> JacobianChain<f64> {
    let mut chain = JacobianChain::new(uniform_vector(rng, width, 1.0));
    for _ in 0..n {
        chain.push(ScanElement::Sparse(random_csr(rng, width, width, 0.3)));
    }
    chain
}

/// Same patterns as `template`, fresh values.
fn revalue(template: &JacobianChain<f64>, rng: &mut StdRng) -> JacobianChain<f64> {
    let mut out = JacobianChain::new(uniform_vector(rng, template.seed().len(), 1.0));
    for jt in template.jacobians() {
        let ScanElement::Sparse(m) = jt else {
            unreachable!()
        };
        out.push(ScanElement::Sparse(
            m.map_values(|_| rng.random_range(-1.0..1.0)),
        ));
    }
    out
}

fn bench_serve_overload(c: &mut Criterion) {
    // One criterion group for both scenarios: the shim writes one JSON
    // record (with its environment/available_parallelism stamp) per group.
    let mut group = c.benchmark_group("serve_overload");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(3));

    let mut rng = seeded_rng(606);
    let template = chain(32, 10, &mut rng);
    for deadline_us in [200u64, 20_000] {
        let service = BppsaService::<f64>::new(ServeConfig {
            max_batch: 4,
            max_delay: Duration::from_micros(100),
            queue_cap: 2 * WAVE,
            max_lanes: 2,
            workspaces_per_lane: 0,
            shed: ShedPolicy {
                feasibility: Some(FeasibilityPolicy { min_flushes: 2 }),
                ..ShedPolicy::disabled()
            },
            // Every flush stalls 500 µs: the estimator trains to stall
            // scale and *stays* there, so the two deadline classes sit on
            // opposite sides of the prediction for the whole run.
            faults: FaultInjector::seeded(
                0x51ED_0CAD,
                FaultRates {
                    flush_stall: 1.0,
                    stall: Duration::from_micros(500),
                    ..FaultRates::none()
                },
            ),
            ..ServeConfig::default()
        });
        let deadline = Duration::from_micros(deadline_us);
        let tickets: Vec<Ticket<f64>> = (0..WAVE).map(|_| Ticket::new()).collect();
        let mut slots: Vec<Option<JacobianChain<f64>>> = (0..WAVE)
            .map(|_| Some(revalue(&template, &mut rng)))
            .collect();
        let mut accepted: Vec<bool> = vec![false; WAVE];
        let mut wave = || {
            for ((slot, ticket), accepted) in slots.iter_mut().zip(&tickets).zip(&mut accepted) {
                let chain = slot.take().expect("reclaimed");
                match service.submit_with_delay(chain, deadline, ticket) {
                    Ok(()) => *accepted = true,
                    Err(SubmitError::Infeasible(chain)) => {
                        *accepted = false;
                        *slot = Some(chain);
                    }
                    Err(other) => panic!("unexpected refusal: {other}"),
                }
            }
            for ((slot, ticket), accepted) in slots.iter_mut().zip(&tickets).zip(&accepted) {
                if *accepted {
                    // Soft deadlines: an admitted late request still
                    // executes, so every accepted wait is an Ok.
                    ticket.wait().expect("accepted request served");
                    *slot = Some(ticket.take_chain());
                }
            }
        };
        // Warm: lane planned, tickets sized, estimator past min_flushes.
        for _ in 0..3 {
            wave();
        }
        group.bench_function(
            format!("shed_precision/deadline_us_{deadline_us}/wave_{WAVE}"),
            |b| b.iter(&mut wave),
        );
        let snaps = service.metrics();
        let submitted: u64 = snaps.iter().map(|l| l.submitted).sum();
        let infeasible: u64 = snaps.iter().map(|l| l.infeasible).sum();
        println!(
            "serve_overload/shed_precision/deadline_us_{deadline_us}: \
             submitted {submitted} infeasible-refused {infeasible} ({:.1}% refused)",
            100.0 * infeasible as f64 / (submitted + infeasible).max(1) as f64,
        );
        service.shutdown();
    }

    let mut rng = seeded_rng(707);
    let template = chain(24, 8, &mut rng);
    for delay_us in [0u64, 200] {
        let service = BppsaService::<f64>::new(ServeConfig {
            max_batch: 2,
            max_delay: Duration::from_micros(delay_us),
            queue_cap: 4,
            max_lanes: 2,
            workspaces_per_lane: 0,
            shed: ShedPolicy {
                max_queue_depth: Some(1),
                ..ShedPolicy::disabled()
            },
            // A watchdog that never fires sets the fast poll cadence the
            // brownout supervisor inherits.
            watchdog: Some(WatchdogPolicy {
                stall_budget: Duration::from_secs(30),
                poll_interval: Duration::from_millis(1),
            }),
            brownout: Some(BrownoutPolicy {
                shed_rate_high: 0.5,
                shed_rate_low: 0.25,
                hot_polls: 1,
                calm_polls: 1,
                ..BrownoutPolicy::default()
            }),
            ..ServeConfig::default()
        });
        let mut seed = 0u64;
        let mut in_flight: Vec<Ticket<f64>> = Vec::new();
        let mut cycle = || {
            // Degrade: flood with non-blocking submits (mostly shed at
            // depth 1) until the supervisor bottoms the level out.
            let deadline = Instant::now() + Duration::from_secs(10);
            while service.brownout_level() < BrownoutLevel::DeclineColdShapes {
                assert!(Instant::now() < deadline, "brownout never bottomed out");
                for _ in 0..16 {
                    let ticket = Ticket::new();
                    seed += 1;
                    if service
                        .try_submit(revalue(&template, &mut seeded_rng(seed)), &ticket)
                        .is_ok()
                    {
                        in_flight.push(ticket);
                    }
                }
            }
            // Drain, then recover: an idle service is Calm every poll.
            for ticket in in_flight.drain(..) {
                ticket.wait().expect("accepted request served");
            }
            let deadline = Instant::now() + Duration::from_secs(10);
            while service.brownout_level() != BrownoutLevel::Normal {
                assert!(Instant::now() < deadline, "brownout never recovered");
                std::thread::sleep(Duration::from_micros(500));
            }
        };
        cycle(); // warm: lane planned, supervisor running
        group.bench_function(format!("brownout_cycle/delay_us_{delay_us}"), |b| {
            b.iter(&mut cycle)
        });
        service.shutdown();
    }
    group.finish();
}

criterion_group!(benches, bench_serve_overload);
criterion_main!(benches);
