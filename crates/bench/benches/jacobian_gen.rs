//! Criterion bench — Table 1's last column: analytic CSR transposed-Jacobian
//! generation vs the column-at-a-time VJP baseline (what "PyTorch Autograd
//! one column at a time" does algorithmically).

use bppsa_ops::{
    jacobian::transposed_jacobian_via_vjp, Conv2d, Conv2dConfig, MaxPool2d, Operator, Relu,
};
use bppsa_tensor::init::{seeded_rng, uniform_tensor};
use bppsa_tensor::Tensor;
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("jacobian_gen");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));

    let mut rng = seeded_rng(5);

    // Small enough that the full VJP baseline is feasible inside a bench.
    let conv = Conv2d::<f32>::new(Conv2dConfig::vgg_style(2, 4, (10, 10)), &mut rng);
    let xc = uniform_tensor(&mut rng, vec![2, 10, 10], 1.0);
    let yc = conv.forward(&xc);
    group.bench_function("conv/analytic_csr", |b| {
        b.iter(|| conv.transposed_jacobian(std::hint::black_box(&xc), &yc))
    });
    group.bench_function("conv/vjp_columns", |b| {
        b.iter(|| transposed_jacobian_via_vjp(&conv, std::hint::black_box(&xc), &yc))
    });

    let relu = Relu::new(vec![4, 10, 10]);
    let xr: Tensor<f32> = uniform_tensor(&mut rng, vec![4, 10, 10], 1.0);
    let yr = Operator::<f32>::forward(&relu, &xr);
    group.bench_function("relu/analytic_csr", |b| {
        b.iter(|| Operator::<f32>::transposed_jacobian(&relu, std::hint::black_box(&xr), &yr))
    });
    group.bench_function("relu/vjp_columns", |b| {
        b.iter(|| transposed_jacobian_via_vjp(&relu, std::hint::black_box(&xr), &yr))
    });

    let pool = MaxPool2d::new(4, (2, 2), (2, 2), (10, 10));
    let xp: Tensor<f32> = uniform_tensor(&mut rng, vec![4, 10, 10], 1.0);
    let yp = Operator::<f32>::forward(&pool, &xp);
    group.bench_function("maxpool/analytic_csr", |b| {
        b.iter(|| Operator::<f32>::transposed_jacobian(&pool, std::hint::black_box(&xp), &yp))
    });
    group.bench_function("maxpool/vjp_columns", |b| {
        b.iter(|| transposed_jacobian_via_vjp(&pool, std::hint::black_box(&xp), &yp))
    });

    group.finish();
}

criterion_group!(benches, bench_generation);
criterion_main!(benches);
