//! Criterion bench — `serve_throughput`: round-trip cost of routing
//! backward requests through the `bppsa-serve` front door, as a function of
//! **lane count** (how many distinct chain shapes the traffic mixes) ×
//! **deadline budget** (how long a below-`max_batch` lane waits for
//! co-traffic).
//!
//! Each measured iteration pushes a fixed wave of requests (round-robin
//! over the shapes) through one persistent service and waits for all of
//! them, reusing tickets and chains — i.e. the steady-state serving loop;
//! requests/sec is `WAVE / (median_ns · 1e-9)`. With a zero deadline every
//! flush is as narrow as the dispatcher's wake latency allows; with a
//! budget, requests coalesce into wider planned-scan fan-outs.
//!
//! In a 1-core container the curve only measures front-door overhead
//! (routing, queueing, condvar round-trips) over the serial scan cost — on
//! multi-core hardware throughput should rise with coalescing until the
//! worker pool saturates. The committed baseline records the host's
//! `available_parallelism` alongside the numbers (shim criterion's
//! `environment` record) so the two regimes cannot be confused.

use bppsa_bench::random_csr;
use bppsa_core::{JacobianChain, ScanElement};
use bppsa_serve::{
    BppsaService, BreakerPolicy, FaultInjector, FaultRates, FaultScript, ServeConfig, ShedPolicy,
    SubmitError, Ticket,
};
use bppsa_tensor::init::{seeded_rng, uniform_vector};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::Rng;
use std::time::Duration;

/// Requests per measured wave.
const WAVE: usize = 24;

/// An RNN-shaped chain: `n` timesteps of small square Jacobians.
fn chain(n: usize, width: usize, rng: &mut StdRng) -> JacobianChain<f64> {
    let mut chain = JacobianChain::new(uniform_vector(rng, width, 1.0));
    for _ in 0..n {
        chain.push(ScanElement::Sparse(random_csr(rng, width, width, 0.3)));
    }
    chain
}

/// Same patterns as `template`, fresh values.
fn revalue(template: &JacobianChain<f64>, rng: &mut StdRng) -> JacobianChain<f64> {
    let mut out = JacobianChain::new(uniform_vector(rng, template.seed().len(), 1.0));
    for jt in template.jacobians() {
        let ScanElement::Sparse(m) = jt else {
            unreachable!()
        };
        out.push(ScanElement::Sparse(
            m.map_values(|_| rng.random_range(-1.0..1.0)),
        ));
    }
    out
}

fn bench_serve_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_throughput");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    let mut rng = seeded_rng(101);
    for lanes in [1usize, 2, 4] {
        // Distinct shapes: different sequence lengths of one width.
        let templates: Vec<JacobianChain<f64>> = (0..lanes)
            .map(|s| chain(48 + 16 * s, 12, &mut rng))
            .collect();
        for delay_us in [0u64, 200] {
            let service = BppsaService::<f64>::new(ServeConfig {
                max_batch: 8,
                max_delay: Duration::from_micros(delay_us),
                queue_cap: 2 * WAVE,
                max_lanes: lanes.max(2),
                workspaces_per_lane: 0,
                shed: ShedPolicy::disabled(),
                ..ServeConfig::default()
            });
            let tickets: Vec<Ticket<f64>> = (0..WAVE).map(|_| Ticket::new()).collect();
            let mut slots: Vec<Option<JacobianChain<f64>>> = (0..WAVE)
                .map(|k| Some(revalue(&templates[k % lanes], &mut rng)))
                .collect();
            // One steady-state wave: submit all, wait all, reclaim chains.
            let mut wave = || {
                for (slot, ticket) in slots.iter_mut().zip(&tickets) {
                    let chain = slot.take().expect("reclaimed");
                    service.submit(chain, ticket).expect("service accepting");
                }
                for (slot, ticket) in slots.iter_mut().zip(&tickets) {
                    ticket.wait().expect("request served");
                    *slot = Some(ticket.take_chain());
                }
            };
            wave(); // warm: lanes planned, workspaces and tickets sized
            group.bench_function(
                format!("lanes_{lanes}/delay_us_{delay_us}/wave_{WAVE}"),
                |b| b.iter(&mut wave),
            );
        }
    }
    group.finish();
}

/// Cold-shape storm: a fresh service hit by `shapes` never-seen shapes
/// back-to-back. Each iteration pays `shapes` full lane bring-ups (symbolic
/// planning + workspace-pool construction + dispatcher spawn) — but since
/// the placeholder rework, the submits themselves only enqueue: planning
/// runs on the per-lane dispatcher threads, so on multi-core hardware the
/// bring-ups overlap instead of serializing under the router lock (in a
/// 1-core container they still time-slice; the group records
/// `available_parallelism` for that reason).
fn bench_cold_shape_storm(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_cold_storm");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(2));

    let mut rng = seeded_rng(303);
    for shapes in [2usize, 4, 8] {
        // Distinct, moderately-expensive-to-plan shapes.
        let templates: Vec<JacobianChain<f64>> = (0..shapes)
            .map(|s| chain(24 + 8 * s, 10, &mut rng))
            .collect();
        group.bench_function(format!("shapes_{shapes}"), |b| {
            b.iter(|| {
                let service = BppsaService::<f64>::new(ServeConfig {
                    max_batch: 4,
                    max_delay: Duration::from_micros(100),
                    queue_cap: 16,
                    max_lanes: shapes.max(2),
                    workspaces_per_lane: 1,
                    shed: ShedPolicy::disabled(),
                    ..ServeConfig::default()
                });
                let tickets: Vec<Ticket<f64>> = (0..shapes).map(|_| Ticket::new()).collect();
                for (template, ticket) in templates.iter().zip(&tickets) {
                    service
                        .submit(template.clone(), ticket)
                        .expect("service accepting");
                }
                for ticket in &tickets {
                    ticket.wait().expect("request served");
                }
                service.shutdown();
            })
        });
    }
    group.finish();
}

/// Shed-rate scenario: one persistent overloaded lane (tiny queue + shed
/// threshold). Each iteration drives a wave of submits; requests beyond the
/// queue-depth threshold are refused at submit instead of blocking, so the
/// measured cost is the overload path itself — cheap synchronous sheds plus
/// the flushes of what was admitted. The post-run lane metrics (printed
/// once per config) report the realized shed rate.
fn bench_shed_rate(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_shed_rate");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(2));

    let mut rng = seeded_rng(404);
    let template = chain(48, 12, &mut rng);
    for depth in [2usize, 8] {
        let service = BppsaService::<f64>::new(ServeConfig {
            max_batch: 4,
            max_delay: Duration::from_micros(50),
            queue_cap: 16,
            max_lanes: 2,
            workspaces_per_lane: 0,
            shed: ShedPolicy {
                max_queue_depth: Some(depth),
                min_warming_delay: None,
                feasibility: None,
            },
            ..ServeConfig::default()
        });
        let tickets: Vec<Ticket<f64>> = (0..WAVE).map(|_| Ticket::new()).collect();
        let mut slots: Vec<Option<JacobianChain<f64>>> = (0..WAVE)
            .map(|_| Some(revalue(&template, &mut rng)))
            .collect();
        // In-flight marker per slot, reused across waves.
        let mut accepted: Vec<bool> = vec![false; WAVE];
        let mut wave = || {
            for ((slot, ticket), accepted) in slots.iter_mut().zip(&tickets).zip(&mut accepted) {
                let chain = slot.take().expect("reclaimed");
                match service.submit(chain, ticket) {
                    Ok(()) => *accepted = true,
                    Err(SubmitError::Shed(chain)) => {
                        *accepted = false;
                        *slot = Some(chain);
                    }
                    Err(other) => panic!("unexpected refusal: {other}"),
                }
            }
            for ((slot, ticket), accepted) in slots.iter_mut().zip(&tickets).zip(&accepted) {
                if *accepted {
                    ticket.wait().expect("accepted request served");
                    *slot = Some(ticket.take_chain());
                }
            }
        };
        wave(); // warm: lane planned, workspaces and tickets sized
        group.bench_function(format!("shed_depth_{depth}/wave_{WAVE}"), |b| {
            b.iter(&mut wave)
        });
        let lane = &service.metrics()[0];
        println!(
            "serve_shed_rate/shed_depth_{depth}: submitted {} shed {} ({:.1}% shed)",
            lane.submitted,
            lane.shed,
            100.0 * lane.shed as f64 / (lane.submitted + lane.shed).max(1) as f64,
        );
    }
    group.finish();
}

/// Recovery scenario: how long a circuit-breaker round trip costs, and how
/// hard the quarantine gate actually refuses under a panic storm.
///
/// * `trip_to_live/cooldown_us_*` — each iteration builds a fresh service
///   whose first batch is scripted to panic with a threshold-1 breaker
///   armed, then rides the quarantine out with [`BppsaService::submit_retrying`]
///   until the half-open probe serves the request. The measured time is the
///   full trip → cool-down → probe-replan → Live cycle (including both lane
///   bring-ups), i.e. the end-to-end unavailability a poisoned-then-healthy
///   shape observes, as a function of the configured cool-down.
/// * `refusal_rate/*` — a persistent service under a seeded 10%-batch-panic
///   storm with a threshold-2 breaker. Submits never retry; a quarantine
///   refusal hands the chain back and is counted. The measured cost is the
///   storm wave itself (panicking flushes + cheap synchronous refusals +
///   lane re-creation); the realized refusal rate — quarantine refusals
///   over submit attempts — prints once per config from the service's own
///   counters.
fn bench_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_recovery");
    // Injected panics are the scenario, not failures: silence the default
    // hook's per-panic backtrace for the duration of this group.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(2));

    let mut rng = seeded_rng(505);
    let template = chain(32, 10, &mut rng);
    for cooldown_us in [200u64, 1000] {
        group.bench_function(format!("trip_to_live/cooldown_us_{cooldown_us}"), |b| {
            b.iter(|| {
                let service = BppsaService::<f64>::new(ServeConfig {
                    max_batch: 1,
                    max_delay: Duration::ZERO,
                    queue_cap: 8,
                    max_lanes: 2,
                    workspaces_per_lane: 0,
                    breaker: BreakerPolicy {
                        max_consecutive_panics: Some(1),
                        cooldown: Duration::from_micros(cooldown_us),
                    },
                    faults: FaultInjector::scripted(FaultScript::new().batch_panic(0, 0)),
                    ..ServeConfig::default()
                });
                // Trip: the scripted panic fails the seeding request's batch
                // and the threshold-1 breaker quarantines the shape.
                let ticket = Ticket::new();
                service
                    .submit(template.clone(), &ticket)
                    .expect("seed accepted");
                ticket
                    .wait()
                    .expect_err("scripted panic fails the first batch");
                let mut chain = ticket.take_chain();
                // Recover: retrying submits absorb the quarantine window;
                // a request that raced into the dying lane is resubmitted.
                loop {
                    service
                        .submit_retrying(chain, &ticket)
                        .expect("retry budget outlasts the cool-down");
                    match ticket.wait() {
                        Ok(()) => break,
                        Err(_) => chain = ticket.take_chain(),
                    }
                }
                service.shutdown();
            })
        });
    }

    // Persistent service under a seeded panic storm; breaker armed.
    let service = BppsaService::<f64>::new(ServeConfig {
        max_batch: 2,
        max_delay: Duration::from_micros(100),
        queue_cap: 2 * WAVE,
        max_lanes: 2,
        workspaces_per_lane: 0,
        breaker: BreakerPolicy {
            max_consecutive_panics: Some(2),
            cooldown: Duration::from_micros(200),
        },
        faults: FaultInjector::seeded(
            0xBADC_0DE5,
            FaultRates {
                batch_panic: 0.10,
                ..FaultRates::none()
            },
        ),
        ..ServeConfig::default()
    });
    let tickets: Vec<Ticket<f64>> = (0..WAVE).map(|_| Ticket::new()).collect();
    let mut slots: Vec<Option<JacobianChain<f64>>> = (0..WAVE)
        .map(|_| Some(revalue(&template, &mut rng)))
        .collect();
    let mut accepted: Vec<bool> = vec![false; WAVE];
    let mut attempts = 0u64;
    let mut wave = || {
        for ((slot, ticket), accepted) in slots.iter_mut().zip(&tickets).zip(&mut accepted) {
            let chain = slot.take().expect("reclaimed");
            attempts += 1;
            match service.submit(chain, ticket) {
                Ok(()) => *accepted = true,
                Err(SubmitError::Quarantined(chain)) => {
                    *accepted = false;
                    *slot = Some(chain);
                }
                Err(other) => panic!("unexpected refusal: {other}"),
            }
        }
        for ((slot, ticket), accepted) in slots.iter_mut().zip(&tickets).zip(&accepted) {
            if *accepted {
                // Under the storm an accepted request may still fail with
                // BatchPanicked/LaneQuarantined; either way the chain comes
                // back and the wave stays conserved.
                let _ = ticket.wait();
                *slot = Some(ticket.take_chain());
            }
        }
    };
    wave(); // warm: first lane planned, tickets sized
    group.bench_function(format!("refusal_rate/panic_10pct/wave_{WAVE}"), |b| {
        b.iter(&mut wave)
    });
    let refused = service.quarantine_refusals();
    println!(
        "serve_recovery/refusal_rate: attempts {attempts} quarantine-refused {refused} \
         ({:.1}% refused)",
        100.0 * refused as f64 / attempts.max(1) as f64,
    );
    std::panic::set_hook(prev_hook);
    group.finish();
}

criterion_group!(
    benches,
    bench_serve_throughput,
    bench_cold_shape_storm,
    bench_shed_rate,
    bench_recovery
);
criterion_main!(benches);
