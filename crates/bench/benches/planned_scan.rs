//! Criterion bench — whole-scan symbolic planning (the strongest form of
//! §3.3): a generic BPPSA backward pass (symbolic + numeric SpGEMM per
//! combine, every iteration) against a [`PlannedScan`] execution (numeric
//! only), the zero-allocation workspace-backed variant
//! ([`PlannedScan::execute_with`]), and the one-time planning cost that
//! amortizes across a training run's thousands of iterations. A second
//! group ablates the row-parallel numeric SpGEMM against single-thread
//! numeric on a large product.
//!
//! A `segmented_scan` group sweeps segment-parallel deep chains — K ∈
//! {1, 2, 4} over depths 4096 and 32768 — isolating what exact interface
//! stitching buys (or costs) at each worker-group width; the emitted JSON's
//! environment record carries `available_parallelism` so single-core
//! overhead readings are never mistaken for multi-core scaling.
//!
//! A third group measures [`BatchedBackward`] throughput — 8 same-shape
//! mini-batches fanned over a [`WorkspacePool`](bppsa_core::WorkspacePool)
//! — as a function of the pool's workspace capacity (1/2/4/8). On
//! multi-core hardware throughput should rise with capacity until it
//! saturates the worker count; in a 1-core container the curve is flat and
//! only measures pool overhead.
//!
//! Set `CRITERION_JSON_DIR=<dir>` to emit `planned_scan.json` /
//! `spgemm_row_parallel.json` / `workspace_pool.json` baselines (committed
//! as `BENCH_planned_scan.json` at the workspace root).

use bppsa_bench::random_csr;
use bppsa_core::{
    bppsa_backward, BatchedBackward, BppsaOptions, JacobianChain, PlannedScan, ScanElement,
};
use bppsa_models::prune::prune_operator;
use bppsa_ops::{Conv2d, Conv2dConfig, Operator, Relu};
use bppsa_sparse::{Csr, SymbolicProduct};
use bppsa_tensor::init::{seeded_rng, uniform_tensor, uniform_vector};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::Rng;
use std::time::Duration;

/// An 8-layer pruned conv/relu chain (the §4.2 retraining shape).
fn pruned_chain() -> JacobianChain<f32> {
    let mut rng = seeded_rng(21);
    let (hw, ch) = (8usize, 8usize);
    let mut elems = Vec::new();
    let mut x = uniform_tensor(&mut rng, vec![ch, hw, hw], 1.0);
    for _ in 0..8 {
        let mut conv = Conv2d::<f32>::new(Conv2dConfig::vgg_style(ch, ch, (hw, hw)), &mut rng);
        prune_operator(&mut conv, 0.9);
        let y = conv.forward(&x);
        elems.push(ScanElement::Sparse(conv.transposed_jacobian_pruned()));
        let relu = Relu::new(vec![ch, hw, hw]);
        let y_relu = Operator::<f32>::forward(&relu, &y);
        elems.push(ScanElement::Sparse(relu.transposed_jacobian(&y, &y_relu)));
        x = y_relu;
    }
    let mut chain = JacobianChain::new(uniform_vector(&mut rng, ch * hw * hw, 1.0));
    for e in elems {
        chain.push(e);
    }
    chain
}

/// The large-chain config the workspace reuse targets: many timesteps of
/// small Jacobians (the RNN / Fig. 9 shape), where each combine is
/// microseconds of FLOPs and the allocating path's per-combine buffer
/// churn is a first-order cost.
fn large_random_chain() -> JacobianChain<f64> {
    let mut rng = seeded_rng(33);
    let n = 512usize;
    let width = 16usize;
    let mut chain = JacobianChain::new(uniform_vector(&mut rng, width, 1.0));
    for _ in 0..n {
        chain.push(ScanElement::Sparse(random_csr(&mut rng, width, width, 0.3)));
    }
    chain
}

fn bench_planned(c: &mut Criterion) {
    let mut group = c.benchmark_group("planned_scan");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    let chain = pruned_chain();
    let opts = BppsaOptions::serial();

    group.bench_function("generic_backward", |b| {
        b.iter(|| bppsa_backward(std::hint::black_box(&chain), opts))
    });

    let plan = PlannedScan::plan(&chain, opts);
    group.bench_function("planned_numeric_backward", |b| {
        b.iter(|| plan.execute(std::hint::black_box(&chain)))
    });

    let mut ws = plan.workspace::<f32>();
    let _ = plan.execute_with(&chain, &mut ws); // warm the buffers
    group.bench_function("planned_workspace_backward", |b| {
        b.iter(|| {
            plan.execute_with(std::hint::black_box(&chain), &mut ws)
                .grads()
                .len()
        })
    });

    group.bench_function("plan_construction_once", |b| {
        b.iter(|| PlannedScan::plan(std::hint::black_box(&chain), opts))
    });

    // The large-chain config of the acceptance bar: workspace-backed planned
    // execution vs the allocating planned path vs generic spgemm.
    let big = large_random_chain();
    let big_plan = PlannedScan::plan(&big, opts);
    group.bench_function("large/generic_backward", |b| {
        b.iter(|| bppsa_backward(std::hint::black_box(&big), opts))
    });
    group.bench_function("large/planned_numeric_backward", |b| {
        b.iter(|| big_plan.execute(std::hint::black_box(&big)))
    });
    let mut big_ws = big_plan.workspace::<f64>();
    let _ = big_plan.execute_with(&big, &mut big_ws);
    group.bench_function("large/planned_workspace_backward", |b| {
        b.iter(|| {
            big_plan
                .execute_with(std::hint::black_box(&big), &mut big_ws)
                .grads()
                .len()
        })
    });

    group.finish();
}

/// A deep narrow chain (the segment-parallel target shape): `n` timesteps
/// of small sparse Jacobians, where the scan's critical path — not any one
/// combine — is the cost.
fn deep_chain(n: usize) -> JacobianChain<f64> {
    let mut rng = seeded_rng(44);
    let width = 8usize;
    let mut chain = JacobianChain::new(uniform_vector(&mut rng, width, 1.0));
    for _ in 0..n {
        chain.push(ScanElement::Sparse(random_csr(&mut rng, width, width, 0.3)));
    }
    chain
}

fn bench_segmented(c: &mut Criterion) {
    let mut group = c.benchmark_group("segmented_scan");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    // K = 1 is the status-quo pooled plan; K ∈ {2, 4} split the same
    // instruction stream across carved worker groups. On a multi-core host
    // the segmented variants should win on deep chains; on one core they
    // measure pure stitching overhead (the JSON environment record carries
    // available_parallelism so the two readings are never confused).
    for depth in [4096usize, 32768] {
        let chain = deep_chain(depth);
        for k in [1usize, 2, 4] {
            let plan = PlannedScan::plan(&chain, BppsaOptions::pooled().segmented(k));
            assert_eq!(plan.segments(), k, "deep chains segment fully");
            let mut ws = plan.workspace::<f64>();
            let _ = plan.execute_with(&chain, &mut ws); // warm buffers + pool
            group.bench_function(format!("depth_{depth}/k{k}"), |b| {
                b.iter(|| {
                    plan.execute_with(std::hint::black_box(&chain), &mut ws)
                        .grads()
                        .len()
                })
            });
        }
    }

    group.finish();
}

fn bench_row_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("spgemm_row_parallel");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    // A large product: 1k × 1k at 8% density (≈ the densified mid-sweep
    // products of a deep chain — compute-heavy enough that row chunks
    // amortize the pool barrier).
    let mut rng = seeded_rng(55);
    let n = 1024usize;
    let a = random_csr(&mut rng, n, n, 0.08);
    let b = random_csr(&mut rng, n, n, 0.08);
    let plan = SymbolicProduct::plan(&a.pattern(), &b.pattern());
    println!(
        "bench spgemm_row_parallel: {} planned MFLOPs, out nnz {}",
        plan.flops() / 1_000_000,
        plan.out_pattern().nnz()
    );

    let mut out = Csr::from_pattern(plan.out_pattern().clone());
    group.bench_function("numeric_single_thread", |bch| {
        bch.iter(|| plan.execute_into(std::hint::black_box(&a), &b, &mut out))
    });
    let pool = bppsa_scan::global_pool();
    group.bench_function("numeric_row_parallel", |bch| {
        bch.iter(|| plan.execute_into_parallel(std::hint::black_box(&a), &b, &mut out, pool))
    });
    group.finish();
}

fn bench_workspace_pool(c: &mut Criterion) {
    let mut group = c.benchmark_group("workspace_pool");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    // 8 mini-batches of the RNN shape (many small Jacobians), same
    // structure with distinct values — the serving-shard workload: one
    // compiled plan, one workspace per in-flight batch.
    let mut rng = seeded_rng(77);
    let (n, width, batches) = (192usize, 16usize, 8usize);
    let template = {
        let mut chain = JacobianChain::new(uniform_vector(&mut rng, width, 1.0));
        for _ in 0..n {
            chain.push(ScanElement::Sparse(random_csr(&mut rng, width, width, 0.3)));
        }
        chain
    };
    let chains: Vec<JacobianChain<f64>> = (0..batches)
        .map(|_| {
            let mut chain = JacobianChain::new(uniform_vector(&mut rng, width, 1.0));
            for jt in template.jacobians() {
                let ScanElement::Sparse(m) = jt else {
                    unreachable!()
                };
                chain.push(ScanElement::Sparse(
                    m.map_values(|_| rng.random_range(-1.0..1.0)),
                ));
            }
            chain
        })
        .collect();
    let plan = std::sync::Arc::new(PlannedScan::plan(&template, BppsaOptions::serial()));

    for capacity in [1usize, 2, 4, 8] {
        let batched = BatchedBackward::with_capacity(std::sync::Arc::clone(&plan), capacity);
        batched.prewarm(batches);
        let sink = std::sync::atomic::AtomicUsize::new(0);
        // Warm the worker pool before measuring.
        batched.execute(&chains, &|_, r| {
            sink.fetch_add(r.grads().len(), std::sync::atomic::Ordering::Relaxed);
        });
        group.bench_function(format!("batched_8_chains/capacity_{capacity}"), |b| {
            b.iter(|| {
                batched.execute(std::hint::black_box(&chains), &|_, r| {
                    sink.fetch_add(r.grads().len(), std::sync::atomic::Ordering::Relaxed);
                })
            })
        });
    }

    // Baseline: the same 8 chains through one workspace, serially.
    let mut ws = plan.workspace::<f64>();
    let _ = plan.execute_with(&chains[0], &mut ws);
    group.bench_function("serial_8_chains/single_workspace", |b| {
        b.iter(|| {
            for chain in &chains {
                let _ = plan.execute_with(std::hint::black_box(chain), &mut ws);
            }
        })
    });

    group.finish();
}

criterion_group!(
    benches,
    bench_planned,
    bench_segmented,
    bench_row_parallel,
    bench_workspace_pool
);
criterion_main!(benches);
