//! Criterion bench — whole-scan symbolic planning (the strongest form of
//! §3.3): a generic BPPSA backward pass (symbolic + numeric SpGEMM per
//! combine, every iteration) against a [`PlannedScan`] execution (numeric
//! only), plus the one-time planning cost that amortizes across a training
//! run's thousands of iterations.

use bppsa_core::{bppsa_backward, BppsaOptions, JacobianChain, PlannedScan, ScanElement};
use bppsa_models::prune::prune_operator;
use bppsa_ops::{Conv2d, Conv2dConfig, Operator, Relu};
use bppsa_tensor::init::{seeded_rng, uniform_tensor, uniform_vector};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

/// An 8-layer pruned conv/relu chain (the §4.2 retraining shape).
fn pruned_chain() -> JacobianChain<f32> {
    let mut rng = seeded_rng(21);
    let (hw, ch) = (8usize, 8usize);
    let mut elems = Vec::new();
    let mut x = uniform_tensor(&mut rng, vec![ch, hw, hw], 1.0);
    for _ in 0..8 {
        let mut conv = Conv2d::<f32>::new(Conv2dConfig::vgg_style(ch, ch, (hw, hw)), &mut rng);
        prune_operator(&mut conv, 0.9);
        let y = conv.forward(&x);
        elems.push(ScanElement::Sparse(conv.transposed_jacobian_pruned()));
        let relu = Relu::new(vec![ch, hw, hw]);
        let y_relu = Operator::<f32>::forward(&relu, &y);
        elems.push(ScanElement::Sparse(relu.transposed_jacobian(&y, &y_relu)));
        x = y_relu;
    }
    let mut chain = JacobianChain::new(uniform_vector(&mut rng, ch * hw * hw, 1.0));
    for e in elems {
        chain.push(e);
    }
    chain
}

fn bench_planned(c: &mut Criterion) {
    let mut group = c.benchmark_group("planned_scan");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    let chain = pruned_chain();
    let opts = BppsaOptions::serial();

    group.bench_function("generic_backward", |b| {
        b.iter(|| bppsa_backward(std::hint::black_box(&chain), opts))
    });

    let plan = PlannedScan::plan(&chain, opts);
    group.bench_function("planned_numeric_backward", |b| {
        b.iter(|| plan.execute(std::hint::black_box(&chain)))
    });

    group.bench_function("plan_construction_once", |b| {
        b.iter(|| PlannedScan::plan(std::hint::black_box(&chain), opts))
    });

    group.finish();
}

criterion_group!(benches, bench_planned);
criterion_main!(benches);
