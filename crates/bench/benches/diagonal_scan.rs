//! Criterion bench — the diagonal-Jacobian elementwise fast path.
//!
//! Three executors over all-diagonal chains (the SSM / linear-recurrence
//! backward shape):
//!
//! * `sequential` — the Θ(n) [`linear_backward`] baseline (one spmv per
//!   layer, no scan tree);
//! * `generic_csr` — the planned scan with the fast path disabled
//!   ([`DiagonalMode::Disabled`]): symbolic one-term products + gather
//!   programs, the path every diagonal chain took before the plan-kind
//!   split. Only benched at moderate lengths — its per-combine symbolic
//!   plans make million-layer programs infeasible to even build;
//! * `diagonal_linear` / `diagonal_log` — the compiled elementwise
//!   program ([`DiagonalMode::Linear`] / [`DiagonalMode::LogSpace`]), the
//!   same [`ScanSchedule`](bppsa_core) replayed lane-wise over a dense
//!   value plane with `O(width)` combine state.
//!
//! Lengths run to 10⁶ (width 1 — the chunking regression shape) to show
//! the fast path's headroom where the generic pipeline cannot follow.
//! Plan-construction cost is benched separately: a diagonal plan is
//! symbolic-product-free bookkeeping, so planning a chain is dramatically
//! cheaper than the generic symbolic pipeline too.
//!
//! Set `CRITERION_JSON_DIR=<dir>` to emit `diagonal_scan.json` (committed
//! as a group of `BENCH_planned_scan.json` at the workspace root).

use bppsa_core::{linear_backward, BppsaOptions, DiagonalMode, JacobianChain, ScanElement};
use bppsa_sparse::Csr;
use bppsa_tensor::init::{seeded_rng, uniform_vector};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::Rng;
use std::time::Duration;

/// An all-diagonal chain over one shared pattern, coefficients near ±1 so
/// both kernels stay in range at every benched length.
fn diagonal_chain(n: usize, width: usize, seed: u64) -> JacobianChain<f64> {
    let mut rng = seeded_rng(seed);
    let pattern = Csr::from_diagonal(&vec![1.0f64; width]).pattern();
    let mut chain = JacobianChain::new(uniform_vector(&mut rng, width, 1.0));
    for _ in 0..n {
        let diag: Vec<f64> = (0..width)
            .map(|_| {
                let sign = if rng.random::<bool>() { 1.0 } else { -1.0 };
                sign * (1.0 + rng.random_range(-1e-3..1e-3))
            })
            .collect();
        chain.push(ScanElement::Sparse(Csr::from_pattern_and_values(
            pattern.clone(),
            diag,
        )));
    }
    chain
}

fn opts(mode: DiagonalMode) -> BppsaOptions {
    BppsaOptions::serial().diagonal(mode)
}

fn bench_diagonal(c: &mut Criterion) {
    let mut group = c.benchmark_group("diagonal_scan");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    // Moderate length: every executor can play, including the generic CSR
    // program — the head-to-head the fast path must win.
    for (n, width) in [(4096usize, 16usize), (32768, 16)] {
        let chain = diagonal_chain(n, width, 51);
        let tag = format!("{n}x{width}");

        group.bench_function(format!("sequential/{tag}"), |b| {
            b.iter(|| linear_backward(std::hint::black_box(&chain)))
        });

        // The generic symbolic pipeline is quadratic-ish in plan size for
        // long chains; keep it to lengths where building it is sane.
        if n <= 16384 {
            let plan = bppsa_core::PlannedScan::plan(&chain, opts(DiagonalMode::Disabled));
            assert!(plan.diagonal_kernel().is_none());
            let mut ws = plan.workspace::<f64>();
            let _ = plan.execute_with(&chain, &mut ws);
            group.bench_function(format!("generic_csr/{tag}"), |b| {
                b.iter(|| {
                    plan.execute_with(std::hint::black_box(&chain), &mut ws)
                        .grads()
                        .len()
                })
            });
        }

        for (label, mode) in [
            ("diagonal_linear", DiagonalMode::Linear),
            ("diagonal_log", DiagonalMode::LogSpace),
        ] {
            let plan = bppsa_core::PlannedScan::plan(&chain, opts(mode));
            assert!(plan.diagonal_kernel().is_some());
            let mut ws = plan.workspace::<f64>();
            let _ = plan.execute_with(&chain, &mut ws);
            group.bench_function(format!("{label}/{tag}"), |b| {
                b.iter(|| {
                    plan.execute_with(std::hint::black_box(&chain), &mut ws)
                        .grads()
                        .len()
                })
            });
        }
    }

    // The million-layer width-1 shape (the chunking regression's): only
    // the sequential baseline and the fast path can run here — generic
    // planning at this length is infeasible by design.
    {
        let (n, width) = (1_000_000usize, 1usize);
        let chain = diagonal_chain(n, width, 52);
        let tag = format!("{n}x{width}");

        group.bench_function(format!("sequential/{tag}"), |b| {
            b.iter(|| linear_backward(std::hint::black_box(&chain)))
        });

        for (label, mode) in [
            ("diagonal_linear", DiagonalMode::Linear),
            ("diagonal_log", DiagonalMode::LogSpace),
        ] {
            let plan = bppsa_core::PlannedScan::plan(&chain, opts(mode));
            assert!(plan.diagonal_kernel().is_some());
            let mut ws = plan.workspace::<f64>();
            let _ = plan.execute_with(&chain, &mut ws);
            group.bench_function(format!("{label}/{tag}"), |b| {
                b.iter(|| {
                    plan.execute_with(std::hint::black_box(&chain), &mut ws)
                        .grads()
                        .len()
                })
            });
        }
    }

    // Plan construction: the diagonal planner replays the schedule into a
    // few flat instruction vectors (no symbolic products at all), so it is
    // not just the execution that gets cheaper.
    {
        let chain = diagonal_chain(4096, 16, 53);
        group.bench_function("plan_construction_diagonal/4096x16", |b| {
            b.iter(|| {
                bppsa_core::PlannedScan::plan(
                    std::hint::black_box(&chain),
                    opts(DiagonalMode::Linear),
                )
            })
        });
        group.bench_function("plan_construction_generic/4096x16", |b| {
            b.iter(|| {
                bppsa_core::PlannedScan::plan(
                    std::hint::black_box(&chain),
                    opts(DiagonalMode::Disabled),
                )
            })
        });
    }

    group.finish();
}

criterion_group!(benches, bench_diagonal);
criterion_main!(benches);
