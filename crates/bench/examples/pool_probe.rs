//! Diagnostic: raw overhead of the persistent worker pool ([`bppsa_scan::WorkerPool`]).
//!
//! Measures (a) the per-batch barrier cost at several batch widths — this is
//! the per-level synchronization price every pooled scan pays — and (b) the
//! speedup of 24 concurrent 64×64 matmuls over serial execution.
//!
//! Run: `cargo run -p bppsa-bench --example pool_probe --release`

use bppsa_scan::global_pool;
use std::time::Instant;

fn main() {
    let pool = global_pool();
    // Raw barrier overhead: empty batches.
    for jobs_per_batch in [1usize, 8, 24, 128] {
        let t0 = Instant::now();
        let reps = 1000;
        for _ in 0..reps {
            let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = (0..jobs_per_batch)
                .map(|_| Box::new(|| {}) as Box<dyn FnOnce() + Send + '_>)
                .collect();
            pool.run_batch(jobs);
        }
        println!(
            "{jobs_per_batch:>4} empty jobs/batch: {:.1} µs/batch",
            t0.elapsed().as_secs_f64() / reps as f64 * 1e6
        );
    }
    // Matmul throughput scaling.
    use bppsa_tensor::{
        init::{seeded_rng, uniform_matrix},
        Matrix,
    };
    let mut rng = seeded_rng(0);
    let mats: Vec<Matrix<f32>> = (0..48)
        .map(|_| uniform_matrix(&mut rng, 64, 64, 0.2))
        .collect();
    let t0 = Instant::now();
    for _ in 0..20 {
        for i in 0..24 {
            std::hint::black_box(mats[i].matmul(&mats[i + 24]));
        }
    }
    let serial = t0.elapsed().as_secs_f64() / 20.0;
    let t0 = Instant::now();
    for _ in 0..20 {
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = (0..24)
            .map(|i| {
                let a = &mats[i];
                let b = &mats[i + 24];
                Box::new(move || {
                    std::hint::black_box(a.matmul(b));
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.run_batch(jobs);
    }
    let pooled = t0.elapsed().as_secs_f64() / 20.0;
    println!(
        "24x 64x64 matmuls: serial {:.1} µs vs pooled {:.1} µs ({:.1}x)",
        serial * 1e6,
        pooled * 1e6,
        serial / pooled
    );
}
