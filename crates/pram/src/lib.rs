//! # bppsa-pram — PRAM machine-model simulator
//!
//! The hardware substitute for the paper's GPU experiments. §3.6 analyzes
//! BPPSA "assuming the system can be conceptualized as a parallel
//! random-access machine (PRAM)"; this crate makes that machine concrete:
//! [`DeviceProfile`]s carry worker counts (from the paper's Table 2 SM
//! counts), per-slot throughput, and per-level launch overheads, and the
//! simulation functions price scan schedules and the sequential baseline
//! against them.
//!
//! This is a documented substitution (see DESIGN.md §6): the real paper
//! measures wall-clock on RTX 2070/2080 Ti; we reproduce the *shape* of
//! those figures — speedup rising with sequence length until bounded by the
//! worker count, falling with batch size, higher/later saturation on the
//! bigger GPU — from first principles, and validate the scan math itself
//! with real threaded execution in `bppsa-core`.
//!
//! ```
//! use bppsa_pram::{simulate_speedups, DeviceProfile, RnnWorkload};
//!
//! let speedup = simulate_speedups(&RnnWorkload::paper_default(), &DeviceProfile::rtx_2070());
//! // The paper measures 4.53× backward / 2.17× overall for this config.
//! assert!(speedup.backward > 1.0);
//! assert!(speedup.overall > 1.0);
//! ```

#![warn(missing_docs)]

mod device;
mod simulate;

pub mod memory;

pub use device::DeviceProfile;
pub use simulate::{
    simulate_baseline, simulate_bppsa, simulate_speedups, simulate_step_groups, speedups,
    RnnWorkload, SimBreakdown, Speedups, StepGroup,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DeviceProfile>();
        assert_send_sync::<RnnWorkload>();
        assert_send_sync::<SimBreakdown>();
    }
}
