//! Schedule simulation: price a scan schedule (or the linear baseline)
//! against a device profile for the paper's RNN workload (§4.1).
//!
//! The workload: a vanilla RNN with hidden size `h` over sequences of length
//! `T` in mini-batches of `B`. The backward dependency chain has the
//! transposed Jacobian `(∂h_{t+1}/∂h_t)ᵀ = W_hhᵀ · diag(1 − h²)` — an `h×h`
//! matrix — at every timestep, and each of the `B` samples carries an
//! independent scan, so a level with `q` pairs costs `q·B` combines.
//!
//! Cost taxonomy (matches `bppsa_core::flops`'s analysis):
//! * up-sweep combines are matrix–matrix: `2h³` FLOPs
//!   (except the seed pair, a matvec — absorbed into the bound);
//! * the middle phase and all down-sweep combines are matrix–vector: `2h²`;
//! * the linear baseline performs `T` *sequential* steps of `B` parallel
//!   matvecs (cuDNN's fused `cudnnRNNBackwardData` shape).

use crate::device::DeviceProfile;
use bppsa_scan::ScanSchedule;

/// The RNN end-to-end workload of §4.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RnnWorkload {
    /// Sequence length `T` (the number of scan elements is `T + 1`).
    pub seq_len: usize,
    /// Mini-batch size `B`.
    pub batch: usize,
    /// Hidden state size (20 in the paper).
    pub hidden: usize,
}

impl RnnWorkload {
    /// The paper's headline configuration: `T = 1000`, `B = 16`, `h = 20`.
    pub fn paper_default() -> Self {
        Self {
            seq_len: 1000,
            batch: 16,
            hidden: 20,
        }
    }

    /// FLOPs of one `h×h · h×h` matrix–matrix combine.
    pub fn matmat_flops(&self) -> u64 {
        2 * (self.hidden as u64).pow(3)
    }

    /// FLOPs of one `h×h · h` matrix–vector combine.
    pub fn matvec_flops(&self) -> u64 {
        2 * (self.hidden as u64).pow(2)
    }
}

/// Wall-clock breakdown of one training iteration (one mini-batch).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimBreakdown {
    /// Forward-pass seconds (identical shape for both methods).
    pub forward_s: f64,
    /// Backward-pass seconds (the part BPPSA accelerates).
    pub backward_s: f64,
    /// BPPSA-only preparation: generating the `T` transposed Jacobians
    /// (embarrassingly parallel elementwise work).
    pub prep_s: f64,
}

impl SimBreakdown {
    /// Total iteration seconds.
    pub fn total_s(&self) -> f64 {
        self.forward_s + self.backward_s + self.prep_s
    }
}

/// Simulated speedups of BPPSA over the baseline (Figure 10's two metrics).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Speedups {
    /// Backward-pass speedup (Figures 10a/10c).
    pub backward: f64,
    /// Overall (end-to-end iteration) speedup (Figures 10b/10d).
    pub overall: f64,
}

/// Forward-pass time, common to both methods: `T` sequential fused steps.
/// cuDNN's forward steps are cheaper than its backward-data steps
/// (Appleyard-style fusion streams the GEMMs); the paper's measured
/// backward/forward ratio at T=1000, B=16 is ≈ 2.25, which a 0.45× step
/// latency reproduces.
fn forward_time(w: &RnnWorkload, d: &DeviceProfile) -> f64 {
    let latency = 0.45 * d.serial_step_s;
    // Aggregate throughput view: the whole batch's step work spreads over
    // all worker slots (latency-dominated at the paper's B and h).
    let aggregate_flops = (w.batch as u64) * 2 * w.matvec_flops();
    let throughput = aggregate_flops as f64 / (d.workers() as f64 * d.flops_per_slot);
    w.seq_len as f64 * (latency + throughput)
}

/// Simulates the baseline: cuDNN-style BP through time — `T` sequential
/// steps, each applying `B` parallel `h×h` matvecs.
pub fn simulate_baseline(w: &RnnWorkload, d: &DeviceProfile) -> SimBreakdown {
    SimBreakdown {
        forward_s: forward_time(w, d),
        backward_s: d.serial_chain_time(w.seq_len, w.batch, w.matvec_flops()),
        prep_s: 0.0,
    }
}

/// Simulates BPPSA under the given schedule cutoff (`None` = full Blelloch).
pub fn simulate_bppsa(
    w: &RnnWorkload,
    d: &DeviceProfile,
    up_levels: Option<usize>,
) -> SimBreakdown {
    let len = w.seq_len + 1;
    let schedule = match up_levels {
        None => ScanSchedule::full(len),
        Some(k) => ScanSchedule::with_up_levels(len, k),
    };

    let mut backward = 0.0;
    // Up-sweep: matrix–matrix combines, B independent scans.
    for level in schedule.up_levels() {
        backward += d.level_time(level.len() * w.batch, w.matmat_flops());
    }
    // Middle: a serial exclusive scan over the block roots; each step is a
    // batch of B matvec-sized combines.
    backward += d.serial_chain_time(schedule.block_roots().len(), w.batch, w.matvec_flops());
    // Down-sweep: matrix–vector combines (prefixes are gradient vectors).
    for level in schedule.down_levels() {
        backward += d.level_time(level.len() * w.batch, w.matvec_flops());
    }

    // Jacobian preparation: T elementwise diag(1−h²) scalings of W_hh — one
    // h×h elementwise product each, fully parallel.
    let prep_ops = w.seq_len * w.batch;
    let prep = d.level_time(prep_ops, w.matvec_flops() / 2);

    SimBreakdown {
        forward_s: forward_time(w, d),
        backward_s: backward,
        prep_s: prep,
    }
}

/// Computes backward and overall speedups of `ours` relative to `base`.
pub fn speedups(base: &SimBreakdown, ours: &SimBreakdown) -> Speedups {
    Speedups {
        backward: base.backward_s / (ours.backward_s + ours.prep_s),
        overall: base.total_s() / ours.total_s(),
    }
}

/// Convenience: simulate both methods and return the speedups.
pub fn simulate_speedups(w: &RnnWorkload, d: &DeviceProfile) -> Speedups {
    speedups(&simulate_baseline(w, d), &simulate_bppsa(w, d, None))
}

/// One step group of a *generic* chain (arbitrary per-op costs): the bridge
/// from `bppsa_core::flops`'s per-step records to device time.
///
/// Granularity note: unlike the RNN workload's 20×20 combines (each pinned
/// to one worker slot), Figure-11-sized sparse kernels parallelize
/// *internally* across the whole device — a GPU SpGEMM splits row-wise over
/// every SM. Step groups therefore price ops at device-wide throughput;
/// what distinguishes a serial group is that its ops cannot overlap **each
/// other** (the dependency chain), paying a latency floor per op.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepGroup {
    /// Whether the group's ops may run concurrently (`false` for the middle
    /// phase and for the baseline's sequential gradient operators).
    pub parallel: bool,
    /// FLOPs of each op in the group.
    pub op_flops: Vec<u64>,
}

/// Prices a sequence of step groups on a device (see [`StepGroup`] for the
/// granularity model).
pub fn simulate_step_groups(groups: &[StepGroup], d: &DeviceProfile) -> f64 {
    let device_flops = d.workers() as f64 * d.flops_per_slot;
    groups
        .iter()
        .map(|g| {
            if g.op_flops.is_empty() {
                0.0
            } else if g.parallel {
                let work: u64 = g.op_flops.iter().sum();
                work as f64 / device_flops + d.level_overhead_s
            } else {
                g.op_flops
                    .iter()
                    .map(|&f| f as f64 / device_flops + d.serial_step_s)
                    .sum()
            }
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(t: usize, b: usize) -> RnnWorkload {
        RnnWorkload {
            seq_len: t,
            batch: b,
            hidden: 20,
        }
    }

    #[test]
    fn paper_headline_config_speedups_are_in_band() {
        // §5.1: T=1000, B=16 on RTX 2070 → 4.53× backward, 2.17× overall.
        // The cost model should land in the same region (±2×).
        let s = simulate_speedups(&RnnWorkload::paper_default(), &DeviceProfile::rtx_2070());
        assert!(
            s.backward > 2.0 && s.backward < 10.0,
            "backward speedup {} out of band",
            s.backward
        );
        assert!(
            s.overall > 1.3 && s.overall < 4.0,
            "overall speedup {} out of band",
            s.overall
        );
        assert!(s.overall < s.backward);
    }

    #[test]
    fn speedup_rises_then_saturates_with_t() {
        // Figure 10a/10b shape: rising in T while T ≲ p, then bounded.
        let d = DeviceProfile::rtx_2070();
        let ts = [10usize, 30, 100, 300, 1000, 3000, 10000, 30000];
        let sp: Vec<f64> = ts
            .iter()
            .map(|&t| simulate_speedups(&w(t, 16), &d).backward)
            .collect();
        // Rising at the start.
        assert!(sp[1] > sp[0] * 0.9);
        assert!(sp[3] > sp[0]);
        // Bounded at the tail: the last two within 30% of each other.
        let tail_ratio = sp[7] / sp[6];
        assert!(
            (0.7..1.3).contains(&tail_ratio),
            "tail not saturating: {sp:?}"
        );
    }

    #[test]
    fn speedup_grows_as_batch_shrinks() {
        // Figure 10c/10d shape: smaller B → more effective workers per scan.
        let d = DeviceProfile::rtx_2080ti();
        let s_small = simulate_speedups(&w(1000, 2), &d);
        let s_large = simulate_speedups(&w(1000, 256), &d);
        assert!(
            s_small.backward > s_large.backward,
            "B=2 {} should beat B=256 {}",
            s_small.backward,
            s_large.backward
        );
    }

    #[test]
    fn bigger_gpu_saturates_later_and_higher() {
        // §5.1's cross-GPU observations: 2080 Ti reaches its max at larger T
        // and holds speedup better at large B.
        let small = DeviceProfile::rtx_2070();
        let big = DeviceProfile::rtx_2080ti();
        let at = |d: &DeviceProfile, t: usize| simulate_speedups(&w(t, 16), d).backward;
        // At the very large end, the bigger GPU wins.
        assert!(at(&big, 30000) > at(&small, 30000));
    }

    #[test]
    fn baseline_has_no_prep_cost() {
        let b = simulate_baseline(&RnnWorkload::paper_default(), &DeviceProfile::rtx_2070());
        assert_eq!(b.prep_s, 0.0);
        assert!(b.backward_s > 0.0 && b.forward_s > 0.0);
    }

    #[test]
    fn hybrid_cutoff_interpolates_to_linear() {
        let d = DeviceProfile::rtx_2070();
        let wl = RnnWorkload::paper_default();
        let linear_like = simulate_bppsa(&wl, &d, Some(0));
        let base = simulate_baseline(&wl, &d);
        // k=0 hybrid is a serial scan: backward time within 2x of baseline's.
        let ratio = linear_like.backward_s / base.backward_s;
        assert!((0.5..2.0).contains(&ratio), "ratio {ratio}");
        // Full Blelloch is much faster than the k=0 degenerate case here.
        let full = simulate_bppsa(&wl, &d, None);
        assert!(full.backward_s < linear_like.backward_s / 2.0);
    }

    #[test]
    fn total_is_sum_of_parts() {
        let b = simulate_bppsa(
            &RnnWorkload::paper_default(),
            &DeviceProfile::rtx_2070(),
            None,
        );
        assert!((b.total_s() - (b.forward_s + b.backward_s + b.prep_s)).abs() < 1e-18);
    }

    #[test]
    fn step_groups_price_dependency_chains() {
        let d = DeviceProfile::rtx_2070();
        // A serial group pays per-step latency for every op.
        let serial = simulate_step_groups(
            &[StepGroup {
                parallel: false,
                op_flops: vec![10; 100],
            }],
            &d,
        );
        assert!(serial >= 100.0 * d.serial_step_s);
        // Parallel groups pay one overhead for the whole level.
        let parallel = simulate_step_groups(
            &[StepGroup {
                parallel: true,
                op_flops: vec![10; 100],
            }],
            &d,
        );
        assert!(parallel < serial);
        // Equal work costs the same throughput term either way; the serial
        // penalty is pure latency.
        let big = 1_000_000_000u64;
        let serial_big = simulate_step_groups(
            &[StepGroup {
                parallel: false,
                op_flops: vec![big],
            }],
            &d,
        );
        let parallel_big = simulate_step_groups(
            &[StepGroup {
                parallel: true,
                op_flops: vec![big],
            }],
            &d,
        );
        assert!((serial_big - parallel_big).abs() < d.serial_step_s + d.level_overhead_s);
    }

    #[test]
    fn empty_groups_cost_nothing() {
        let d = DeviceProfile::rtx_2070();
        assert_eq!(simulate_step_groups(&[], &d), 0.0);
        assert_eq!(
            simulate_step_groups(
                &[StepGroup {
                    parallel: true,
                    op_flops: vec![]
                }],
                &d
            ),
            0.0
        );
    }
}
