//! Device profiles for the PRAM cost model.
//!
//! §3.6 assumes "the system can be conceptualized as a parallel random-access
//! machine (PRAM)". A [`DeviceProfile`] instantiates that abstraction with
//! the constants that matter for the paper's figures: how many `⊙` combines
//! can run concurrently (`p`, the worker count), how fast each runs, and the
//! fixed cost of one level-synchronous step (a CUDA kernel launch in the
//! paper's implementation).
//!
//! The two profiles mirror the paper's Table 2 GPUs: RTX 2070 (36 SMs) and
//! RTX 2080 Ti (68 SMs). Per-slot throughput and overheads are calibrated so
//! the T = 1000, B = 16 RNN workload lands near the paper's measured
//! speedups (see EXPERIMENTS.md); all *shape* conclusions are insensitive to
//! the exact constants.

use std::fmt;

/// A PRAM device profile: the machine abstraction the simulator prices
/// schedules against.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceProfile {
    /// Human-readable name (e.g. `"RTX 2070"`).
    pub name: String,
    /// Number of streaming multiprocessors (Table 2: 36 / 68).
    pub sms: usize,
    /// Concurrent worker slots per SM; one slot executes one `⊙` combine
    /// (one thread block in the paper's CUDA implementation).
    pub slots_per_sm: usize,
    /// Sustained FLOP/s of a single worker slot.
    pub flops_per_slot: f64,
    /// Fixed cost of one level-synchronous parallel step (kernel launch +
    /// synchronization), in seconds.
    pub level_overhead_s: f64,
    /// Fixed cost of one step of a *sequential* dependency chain (the
    /// baseline's per-timestep cost floor; cuDNN's fused RNN steps make this
    /// much smaller than a full launch), in seconds.
    pub serial_step_s: f64,
}

impl DeviceProfile {
    /// The RTX 2070 profile (36 SMs) from the paper's Table 2.
    ///
    /// `flops_per_slot` reflects the *effective* throughput of one thread
    /// block executing a tiny (20×20) matrix multiply out of global memory —
    /// a small fraction of peak FP32, which is what makes the measured
    /// saturation speedups land where the paper's do.
    pub fn rtx_2070() -> Self {
        Self {
            name: "RTX 2070".to_string(),
            sms: 36,
            slots_per_sm: 16,
            flops_per_slot: 1.85e9,
            level_overhead_s: 2.0e-6,
            serial_step_s: 1.2e-6,
        }
    }

    /// The RTX 2080 Ti profile (68 SMs) from the paper's Table 2.
    pub fn rtx_2080ti() -> Self {
        Self {
            name: "RTX 2080 Ti".to_string(),
            sms: 68,
            slots_per_sm: 16,
            flops_per_slot: 2.6e9,
            level_overhead_s: 2.0e-6,
            serial_step_s: 0.9e-6,
        }
    }

    /// Total worker slots `p = SMs × slots_per_sm` — the paper's "total
    /// number of CUDA threads that can be executed concurrently in all SMs"
    /// at combine granularity.
    pub fn workers(&self) -> usize {
        self.sms * self.slots_per_sm
    }

    /// Time for one worker slot to execute `flops` FLOPs.
    pub fn slot_time(&self, flops: u64) -> f64 {
        flops as f64 / self.flops_per_slot
    }

    /// Time for one *parallel level* of `ops` identical combines of `flops`
    /// FLOPs each: `⌈ops/p⌉` sequential waves of slot time plus the level
    /// overhead.
    pub fn level_time(&self, ops: usize, flops: u64) -> f64 {
        if ops == 0 {
            return 0.0;
        }
        let waves = ops.div_ceil(self.workers());
        waves as f64 * self.slot_time(flops) + self.level_overhead_s
    }

    /// Time for `steps` steps of a sequential dependency chain where each
    /// step also performs `ops` parallel combines of `flops` FLOPs (the
    /// baseline BP/linear-scan shape: `Θ(n)` steps of batched matvecs).
    pub fn serial_chain_time(&self, steps: usize, ops: usize, flops: u64) -> f64 {
        if steps == 0 {
            return 0.0;
        }
        let waves = ops.div_ceil(self.workers()).max(1);
        steps as f64 * (waves as f64 * self.slot_time(flops) + self.serial_step_s)
    }

    /// Time for one parallel level of *heterogeneous* combines (each entry
    /// one op's FLOPs): the classic work/span bound
    /// `max(span, work / (p·F))` plus the level overhead. Used to price
    /// Figure 11-style chains whose step costs vary wildly.
    pub fn heterogeneous_level_time(&self, op_flops: &[u64]) -> f64 {
        if op_flops.is_empty() {
            return 0.0;
        }
        let span = self.slot_time(op_flops.iter().copied().max().unwrap_or(0));
        let work: u64 = op_flops.iter().sum();
        let throughput = work as f64 / (self.workers() as f64 * self.flops_per_slot);
        span.max(throughput) + self.level_overhead_s
    }
}

impl fmt::Display for DeviceProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} SMs, {} workers, {:.1} GFLOP/s per slot)",
            self.name,
            self.sms,
            self.workers(),
            self.flops_per_slot / 1e9
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_match_table2_sm_counts() {
        assert_eq!(DeviceProfile::rtx_2070().sms, 36);
        assert_eq!(DeviceProfile::rtx_2080ti().sms, 68);
        assert!(DeviceProfile::rtx_2080ti().workers() > DeviceProfile::rtx_2070().workers());
    }

    #[test]
    fn level_time_scales_with_waves() {
        let d = DeviceProfile::rtx_2070();
        let p = d.workers();
        let one_wave = d.level_time(p, 1000);
        let two_waves = d.level_time(p + 1, 1000);
        assert!(two_waves > one_wave);
        // Exactly one extra slot-time.
        assert!((two_waves - one_wave - d.slot_time(1000)).abs() < 1e-15);
    }

    #[test]
    fn empty_level_is_free() {
        let d = DeviceProfile::rtx_2070();
        assert_eq!(d.level_time(0, 1000), 0.0);
    }

    #[test]
    fn serial_chain_time_is_linear_in_steps() {
        let d = DeviceProfile::rtx_2080ti();
        let t1 = d.serial_chain_time(100, 16, 800);
        let t2 = d.serial_chain_time(200, 16, 800);
        assert!((t2 - 2.0 * t1).abs() < 1e-12);
    }

    #[test]
    fn display_mentions_workers() {
        let d = DeviceProfile::rtx_2070();
        assert!(format!("{d}").contains("576 workers"));
    }
}
