//! Space-complexity accounting (§3.6 and §2.2).
//!
//! The paper's scalability argument against pipeline parallelism is a memory
//! argument: GPipe-style pipelining needs `Θ(L/K + K)·M_x` per device
//! (activations for every in-flight micro-batch), growing linearly in the
//! device count `K`, while BPPSA needs `Θ(max(n/p, 1))·M_Jacob`, *shrinking*
//! as `p` grows until it bottoms out at one Jacobian per worker.

/// Per-device memory of BPPSA with `n` scan elements over `p` workers, each
/// element at most `jacob_bytes`: `max(⌈n/p⌉, 1) · M_Jacob`.
pub fn bppsa_per_device_bytes(n: usize, p: usize, jacob_bytes: usize) -> usize {
    let p = p.max(1);
    n.div_ceil(p).max(1) * jacob_bytes
}

/// Per-device memory of GPipe-style pipeline parallelism with `layers`
/// network layers over `devices` pipeline stages and activations of
/// `activation_bytes` per sample per boundary: `Θ(L/K + K)·M_x`
/// (re-materialization keeps `L/K` per-sample activation slots for
/// recompute, plus `K` boundary activations for the in-flight micro-batches
/// needed to fill the pipeline — Figure 3).
pub fn pipeline_per_device_bytes(layers: usize, devices: usize, activation_bytes: usize) -> usize {
    let k = devices.max(1);
    (layers.div_ceil(k) + k) * activation_bytes
}

/// The device count at which pipeline memory starts growing: beyond
/// `K ≈ √L` the `+K` term dominates and adding devices *costs* memory.
pub fn pipeline_memory_minimum(layers: usize) -> usize {
    ((layers as f64).sqrt().round() as usize).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bppsa_memory_shrinks_with_workers() {
        let n = 1024;
        let j = 1 << 20; // 1 MiB per Jacobian
        let m1 = bppsa_per_device_bytes(n, 1, j);
        let m16 = bppsa_per_device_bytes(n, 16, j);
        let m_huge = bppsa_per_device_bytes(n, 1 << 20, j);
        assert!(m1 > m16);
        assert!(m16 > m_huge);
        // Floor: one Jacobian per worker.
        assert_eq!(m_huge, j);
    }

    #[test]
    fn pipeline_memory_grows_with_devices_eventually() {
        let layers = 64;
        let act = 1 << 10;
        let at = |k| pipeline_per_device_bytes(layers, k, act);
        // Early on, splitting layers helps …
        assert!(at(2) < at(1));
        // … but at large K the +K term dominates (the paper's limit).
        assert!(at(64) > at(8));
        assert!(at(128) > at(64));
    }

    #[test]
    fn pipeline_minimum_near_sqrt_layers() {
        assert_eq!(pipeline_memory_minimum(64), 8);
        assert_eq!(pipeline_memory_minimum(100), 10);
        assert_eq!(pipeline_memory_minimum(1), 1);
    }

    #[test]
    fn zero_workers_clamped() {
        assert_eq!(bppsa_per_device_bytes(8, 0, 100), 800);
        assert_eq!(pipeline_per_device_bytes(8, 0, 100), 900);
    }

    #[test]
    fn crossover_exists_for_large_k() {
        // For big enough K, BPPSA per-device memory < pipeline per-device
        // memory even with much larger Jacobian elements.
        let layers = 1000;
        let jacob = 50 * (1 << 10);
        let act = 1 << 10;
        let k = 512;
        assert!(
            bppsa_per_device_bytes(layers, k, jacob) < pipeline_per_device_bytes(layers, k, act)
        );
    }
}
