//! # bppsa-tensor — dense linear algebra substrate
//!
//! Dense scalars, vectors, matrices, and N-d tensors for the BPPSA
//! (back-propagation by parallel scan) reproduction. This crate is the lowest
//! layer of the workspace: everything else — sparse kernels, NN operators,
//! the scan framework, and the models — builds on these types.
//!
//! The design intentionally avoids external linear-algebra crates: the paper
//! is a systems paper about restructuring the *computation* of
//! back-propagation, so owning the kernels end-to-end keeps FLOP accounting
//! and exactness arguments airtight.
//!
//! ## Quick example
//!
//! ```
//! use bppsa_tensor::{Matrix, Vector};
//!
//! // One step of the paper's Equation 3: ∇x_i = (∂x_{i+1}/∂x_i)^T ∇x_{i+1}.
//! let jacobian_t = Matrix::from_rows(&[&[0.5_f64, 0.0], &[0.0, 2.0]]);
//! let grad_next = Vector::from_vec(vec![1.0, 1.0]);
//! let grad = jacobian_t.matvec(&grad_next);
//! assert_eq!(grad.as_slice(), &[0.5, 2.0]);
//! ```

#![warn(missing_docs)]

mod error;
mod matrix;
mod scalar;
mod tensor;
mod vector;

pub mod init;

pub use error::ShapeError;
pub use matrix::Matrix;
pub use scalar::Scalar;
pub use tensor::Tensor;
pub use vector::Vector;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Matrix<f32>>();
        assert_send_sync::<Vector<f32>>();
        assert_send_sync::<Tensor<f32>>();
        assert_send_sync::<ShapeError>();
    }

    #[test]
    fn equation3_chain_matches_composed_jacobian() {
        // (J2 J1)^T v == J1^T (J2^T v): the associativity BPPSA relies on.
        let j1t = Matrix::from_rows(&[&[1.0_f64, 2.0], &[3.0, 4.0]]);
        let j2t = Matrix::from_rows(&[&[0.5, -1.0], &[1.5, 0.25]]);
        let v = Vector::from_vec(vec![1.0, -1.0]);
        let step_by_step = j1t.matvec(&j2t.matvec(&v));
        let composed = j1t.matmul(&j2t).matvec(&v);
        assert!(step_by_step.approx_eq(&composed, 1e-12));
    }
}
