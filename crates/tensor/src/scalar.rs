//! The [`Scalar`] abstraction over floating-point element types.
//!
//! All linear algebra in this workspace is generic over `Scalar` so that
//! models can train in `f32` (matching GPU practice in the paper) while test
//! oracles (finite differences, exactness bounds) run in `f64`.

use std::fmt::{Debug, Display};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A floating-point scalar type usable as the element of vectors, matrices,
/// and tensors throughout the BPPSA workspace.
///
/// This trait is implemented for [`f32`] and [`f64`]; it is sealed in spirit
/// (implementing it for other types is unsupported) but left open so that
/// downstream experiments with custom numeric types remain possible.
///
/// # Examples
///
/// ```
/// use bppsa_tensor::Scalar;
///
/// fn double<S: Scalar>(x: S) -> S {
///     x + x
/// }
/// assert_eq!(double(2.0_f32), 4.0);
/// assert_eq!(double(2.0_f64), 4.0);
/// ```
pub trait Scalar:
    Copy
    + Clone
    + Debug
    + Display
    + Default
    + PartialEq
    + PartialOrd
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Sum
    + Send
    + Sync
    + 'static
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Negative infinity (used by max-pooling as the fold seed).
    const NEG_INFINITY: Self;

    /// Converts from `f64`, rounding to the nearest representable value.
    fn from_f64(v: f64) -> Self;
    /// Converts to `f64` exactly (both supported types embed into `f64`).
    fn to_f64(self) -> f64;
    /// Converts from `usize` (used for averaging and normalization factors).
    fn from_usize(v: usize) -> Self {
        Self::from_f64(v as f64)
    }

    /// Absolute value.
    fn abs(self) -> Self;
    /// Square root.
    fn sqrt(self) -> Self;
    /// Natural exponential.
    fn exp(self) -> Self;
    /// Natural logarithm.
    fn ln(self) -> Self;
    /// Hyperbolic tangent (the RNN activation in the paper's Equation 9).
    fn tanh(self) -> Self;
    /// Integer power.
    fn powi(self, n: i32) -> Self;
    /// The larger of `self` and `other` (NaN-propagating comparisons avoided).
    fn maximum(self, other: Self) -> Self;
    /// The smaller of `self` and `other`.
    fn minimum(self, other: Self) -> Self;
    /// Whether the value is finite (not NaN or infinite).
    fn is_finite(self) -> bool;
    /// Machine epsilon for the type.
    fn epsilon() -> Self;

    /// Element-wise `dst[i] = dst[i] + a · src[i]` over the common prefix of
    /// the two slices — the inner loop of dense numeric kernels. The default
    /// body is the scalar loop; `f32`/`f64` override it with a 256-bit SIMD
    /// version on `x86_64` when AVX is available at runtime. Every override
    /// must be **bit-for-bit identical** to the scalar loop: exactly one
    /// IEEE multiply and one IEEE add per element, in round-to-nearest —
    /// which rules out FMA (fused rounding differs) but not plain vector
    /// mul/add (IEEE per lane).
    #[inline]
    fn slice_axpy(dst: &mut [Self], a: Self, src: &[Self]) {
        for (d, s) in dst.iter_mut().zip(src) {
            *d += a * *s;
        }
    }

    /// Two stacked [`Scalar::slice_axpy`]s in one pass:
    /// `dst[i] = (dst[i] + a1 · src1[i]) + a2 · src2[i]`, with exactly that
    /// association — bit-for-bit identical to two sequential `slice_axpy`
    /// calls, but with the accumulator loaded and stored once per *two*
    /// multiply–adds (dense kernels are load/store-port-bound, not
    /// multiply-bound). The same no-FMA override rules apply.
    #[inline]
    fn slice_axpy2(dst: &mut [Self], a1: Self, src1: &[Self], a2: Self, src2: &[Self]) {
        let n = dst.len().min(src1.len()).min(src2.len());
        for i in 0..n {
            dst[i] = dst[i] + a1 * src1[i] + a2 * src2[i];
        }
    }

    /// Four stacked [`Scalar::slice_axpy`]s in one pass, associated as
    /// `(((dst + a1·s1) + a2·s2) + a3·s3) + a4·s4` per element — bit-for-bit
    /// identical to four sequential `slice_axpy` calls, with the accumulator
    /// loaded and stored once per *four* multiply–adds. The same no-FMA
    /// override rules apply.
    #[allow(clippy::too_many_arguments)]
    #[inline]
    fn slice_axpy4(
        dst: &mut [Self],
        a1: Self,
        src1: &[Self],
        a2: Self,
        src2: &[Self],
        a3: Self,
        src3: &[Self],
        a4: Self,
        src4: &[Self],
    ) {
        let n = dst
            .len()
            .min(src1.len())
            .min(src2.len())
            .min(src3.len())
            .min(src4.len());
        for i in 0..n {
            dst[i] = dst[i] + a1 * src1[i] + a2 * src2[i] + a3 * src3[i] + a4 * src4[i];
        }
    }

    /// Element-wise `dst[i] = ZERO + a · src[i]` over the common prefix —
    /// the *initializing* form of [`Scalar::slice_axpy`]. The leading
    /// `ZERO +` canonicalizes a `-0.0` product to `+0.0` (IEEE
    /// round-to-nearest: `(+0.0) + (-0.0) == +0.0`), matching the generic
    /// SpGEMM's first-term contract. The same bit-for-bit override rules as
    /// [`Scalar::slice_axpy`] apply.
    #[inline]
    fn slice_scale_canonical(dst: &mut [Self], a: Self, src: &[Self]) {
        for (d, s) in dst.iter_mut().zip(src) {
            *d = Self::ZERO + a * *s;
        }
    }
}

/// 256-bit AVX bodies for the [`Scalar`] slice kernels. Plain `vmulpd` /
/// `vaddpd` (and the `ps` forms) only — one IEEE multiply and one IEEE add
/// per lane, so results are bit-for-bit identical to the scalar loops. FMA
/// is deliberately not used: its fused single rounding would diverge from
/// the scalar path and break the kernels' differential contract.
#[cfg(target_arch = "x86_64")]
mod avx {
    use std::arch::x86_64::*;

    /// # Safety
    ///
    /// Caller must have verified AVX support (`is_x86_feature_detected!`).
    #[target_feature(enable = "avx")]
    pub unsafe fn axpy_f64(dst: &mut [f64], a: f64, src: &[f64]) {
        let n = dst.len().min(src.len());
        let av = _mm256_set1_pd(a);
        let (dp, sp) = (dst.as_mut_ptr(), src.as_ptr());
        let mut i = 0;
        // Two independent 4-lane streams per iteration keep both vector
        // ALU ports busy (no cross-iteration dependency: distinct elements).
        while i + 8 <= n {
            let r0 = _mm256_add_pd(
                _mm256_loadu_pd(dp.add(i)),
                _mm256_mul_pd(av, _mm256_loadu_pd(sp.add(i))),
            );
            let r1 = _mm256_add_pd(
                _mm256_loadu_pd(dp.add(i + 4)),
                _mm256_mul_pd(av, _mm256_loadu_pd(sp.add(i + 4))),
            );
            _mm256_storeu_pd(dp.add(i), r0);
            _mm256_storeu_pd(dp.add(i + 4), r1);
            i += 8;
        }
        while i < n {
            *dp.add(i) = *dp.add(i) + a * *sp.add(i);
            i += 1;
        }
    }

    /// # Safety
    ///
    /// Caller must have verified AVX support (`is_x86_feature_detected!`).
    #[target_feature(enable = "avx")]
    pub unsafe fn axpy2_f64(dst: &mut [f64], a1: f64, src1: &[f64], a2: f64, src2: &[f64]) {
        let n = dst.len().min(src1.len()).min(src2.len());
        let av1 = _mm256_set1_pd(a1);
        let av2 = _mm256_set1_pd(a2);
        let (dp, s1, s2) = (dst.as_mut_ptr(), src1.as_ptr(), src2.as_ptr());
        let mut i = 0;
        while i + 8 <= n {
            // `(d + a1·s1) + a2·s2` per lane — the association of two
            // stacked axpys, kept explicit so the result is bit-identical.
            let r0 = _mm256_add_pd(
                _mm256_add_pd(
                    _mm256_loadu_pd(dp.add(i)),
                    _mm256_mul_pd(av1, _mm256_loadu_pd(s1.add(i))),
                ),
                _mm256_mul_pd(av2, _mm256_loadu_pd(s2.add(i))),
            );
            let r1 = _mm256_add_pd(
                _mm256_add_pd(
                    _mm256_loadu_pd(dp.add(i + 4)),
                    _mm256_mul_pd(av1, _mm256_loadu_pd(s1.add(i + 4))),
                ),
                _mm256_mul_pd(av2, _mm256_loadu_pd(s2.add(i + 4))),
            );
            _mm256_storeu_pd(dp.add(i), r0);
            _mm256_storeu_pd(dp.add(i + 4), r1);
            i += 8;
        }
        while i < n {
            *dp.add(i) = *dp.add(i) + a1 * *s1.add(i) + a2 * *s2.add(i);
            i += 1;
        }
    }

    /// # Safety
    ///
    /// Caller must have verified AVX support (`is_x86_feature_detected!`).
    #[target_feature(enable = "avx")]
    pub unsafe fn axpy2_f32(dst: &mut [f32], a1: f32, src1: &[f32], a2: f32, src2: &[f32]) {
        let n = dst.len().min(src1.len()).min(src2.len());
        let av1 = _mm256_set1_ps(a1);
        let av2 = _mm256_set1_ps(a2);
        let (dp, s1, s2) = (dst.as_mut_ptr(), src1.as_ptr(), src2.as_ptr());
        let mut i = 0;
        while i + 16 <= n {
            let r0 = _mm256_add_ps(
                _mm256_add_ps(
                    _mm256_loadu_ps(dp.add(i)),
                    _mm256_mul_ps(av1, _mm256_loadu_ps(s1.add(i))),
                ),
                _mm256_mul_ps(av2, _mm256_loadu_ps(s2.add(i))),
            );
            let r1 = _mm256_add_ps(
                _mm256_add_ps(
                    _mm256_loadu_ps(dp.add(i + 8)),
                    _mm256_mul_ps(av1, _mm256_loadu_ps(s1.add(i + 8))),
                ),
                _mm256_mul_ps(av2, _mm256_loadu_ps(s2.add(i + 8))),
            );
            _mm256_storeu_ps(dp.add(i), r0);
            _mm256_storeu_ps(dp.add(i + 8), r1);
            i += 16;
        }
        while i < n {
            *dp.add(i) = *dp.add(i) + a1 * *s1.add(i) + a2 * *s2.add(i);
            i += 1;
        }
    }

    /// # Safety
    ///
    /// Caller must have verified AVX support (`is_x86_feature_detected!`).
    #[target_feature(enable = "avx")]
    pub unsafe fn scale_canonical_f64(dst: &mut [f64], a: f64, src: &[f64]) {
        let n = dst.len().min(src.len());
        let av = _mm256_set1_pd(a);
        let zero = _mm256_setzero_pd();
        let (dp, sp) = (dst.as_mut_ptr(), src.as_ptr());
        let mut i = 0;
        while i + 8 <= n {
            // `(+0.0) + x` per lane — the same `-0.0 → +0.0`
            // canonicalization as the scalar `ZERO + a·s`.
            let r0 = _mm256_add_pd(zero, _mm256_mul_pd(av, _mm256_loadu_pd(sp.add(i))));
            let r1 = _mm256_add_pd(zero, _mm256_mul_pd(av, _mm256_loadu_pd(sp.add(i + 4))));
            _mm256_storeu_pd(dp.add(i), r0);
            _mm256_storeu_pd(dp.add(i + 4), r1);
            i += 8;
        }
        while i < n {
            *dp.add(i) = 0.0 + a * *sp.add(i);
            i += 1;
        }
    }

    /// # Safety
    ///
    /// Caller must have verified AVX-512F support
    /// (`is_x86_feature_detected!`).
    #[target_feature(enable = "avx512f")]
    pub unsafe fn axpy_f64_512(dst: &mut [f64], a: f64, src: &[f64]) {
        let n = dst.len().min(src.len());
        let av = _mm512_set1_pd(a);
        let (dp, sp) = (dst.as_mut_ptr(), src.as_ptr());
        let mut i = 0;
        while i + 8 <= n {
            let r = _mm512_add_pd(
                _mm512_loadu_pd(dp.add(i)),
                _mm512_mul_pd(av, _mm512_loadu_pd(sp.add(i))),
            );
            _mm512_storeu_pd(dp.add(i), r);
            i += 8;
        }
        while i < n {
            *dp.add(i) = *dp.add(i) + a * *sp.add(i);
            i += 1;
        }
    }

    /// # Safety
    ///
    /// Caller must have verified AVX-512F support
    /// (`is_x86_feature_detected!`).
    #[target_feature(enable = "avx512f")]
    pub unsafe fn axpy2_f64_512(dst: &mut [f64], a1: f64, src1: &[f64], a2: f64, src2: &[f64]) {
        let n = dst.len().min(src1.len()).min(src2.len());
        let av1 = _mm512_set1_pd(a1);
        let av2 = _mm512_set1_pd(a2);
        let (dp, s1, s2) = (dst.as_mut_ptr(), src1.as_ptr(), src2.as_ptr());
        let mut i = 0;
        while i + 8 <= n {
            let r = _mm512_add_pd(
                _mm512_add_pd(
                    _mm512_loadu_pd(dp.add(i)),
                    _mm512_mul_pd(av1, _mm512_loadu_pd(s1.add(i))),
                ),
                _mm512_mul_pd(av2, _mm512_loadu_pd(s2.add(i))),
            );
            _mm512_storeu_pd(dp.add(i), r);
            i += 8;
        }
        while i < n {
            *dp.add(i) = *dp.add(i) + a1 * *s1.add(i) + a2 * *s2.add(i);
            i += 1;
        }
    }

    /// # Safety
    ///
    /// Caller must have verified AVX support (`is_x86_feature_detected!`).
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx")]
    pub unsafe fn axpy4_f64(
        dst: &mut [f64],
        a1: f64,
        src1: &[f64],
        a2: f64,
        src2: &[f64],
        a3: f64,
        src3: &[f64],
        a4: f64,
        src4: &[f64],
    ) {
        let n = dst
            .len()
            .min(src1.len())
            .min(src2.len())
            .min(src3.len())
            .min(src4.len());
        let (av1, av2) = (_mm256_set1_pd(a1), _mm256_set1_pd(a2));
        let (av3, av4) = (_mm256_set1_pd(a3), _mm256_set1_pd(a4));
        let dp = dst.as_mut_ptr();
        let (s1, s2, s3, s4) = (src1.as_ptr(), src2.as_ptr(), src3.as_ptr(), src4.as_ptr());
        let mut i = 0;
        while i + 4 <= n {
            // The four-axpy association, kept explicit lane by lane.
            let mut r = _mm256_add_pd(
                _mm256_loadu_pd(dp.add(i)),
                _mm256_mul_pd(av1, _mm256_loadu_pd(s1.add(i))),
            );
            r = _mm256_add_pd(r, _mm256_mul_pd(av2, _mm256_loadu_pd(s2.add(i))));
            r = _mm256_add_pd(r, _mm256_mul_pd(av3, _mm256_loadu_pd(s3.add(i))));
            r = _mm256_add_pd(r, _mm256_mul_pd(av4, _mm256_loadu_pd(s4.add(i))));
            _mm256_storeu_pd(dp.add(i), r);
            i += 4;
        }
        while i < n {
            *dp.add(i) =
                *dp.add(i) + a1 * *s1.add(i) + a2 * *s2.add(i) + a3 * *s3.add(i) + a4 * *s4.add(i);
            i += 1;
        }
    }

    /// # Safety
    ///
    /// Caller must have verified AVX-512F support
    /// (`is_x86_feature_detected!`).
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx512f")]
    pub unsafe fn axpy4_f64_512(
        dst: &mut [f64],
        a1: f64,
        src1: &[f64],
        a2: f64,
        src2: &[f64],
        a3: f64,
        src3: &[f64],
        a4: f64,
        src4: &[f64],
    ) {
        let n = dst
            .len()
            .min(src1.len())
            .min(src2.len())
            .min(src3.len())
            .min(src4.len());
        let (av1, av2) = (_mm512_set1_pd(a1), _mm512_set1_pd(a2));
        let (av3, av4) = (_mm512_set1_pd(a3), _mm512_set1_pd(a4));
        let dp = dst.as_mut_ptr();
        let (s1, s2, s3, s4) = (src1.as_ptr(), src2.as_ptr(), src3.as_ptr(), src4.as_ptr());
        let mut i = 0;
        while i + 8 <= n {
            let mut r = _mm512_add_pd(
                _mm512_loadu_pd(dp.add(i)),
                _mm512_mul_pd(av1, _mm512_loadu_pd(s1.add(i))),
            );
            r = _mm512_add_pd(r, _mm512_mul_pd(av2, _mm512_loadu_pd(s2.add(i))));
            r = _mm512_add_pd(r, _mm512_mul_pd(av3, _mm512_loadu_pd(s3.add(i))));
            r = _mm512_add_pd(r, _mm512_mul_pd(av4, _mm512_loadu_pd(s4.add(i))));
            _mm512_storeu_pd(dp.add(i), r);
            i += 8;
        }
        while i < n {
            *dp.add(i) =
                *dp.add(i) + a1 * *s1.add(i) + a2 * *s2.add(i) + a3 * *s3.add(i) + a4 * *s4.add(i);
            i += 1;
        }
    }

    /// # Safety
    ///
    /// Caller must have verified AVX support (`is_x86_feature_detected!`).
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx")]
    pub unsafe fn axpy4_f32(
        dst: &mut [f32],
        a1: f32,
        src1: &[f32],
        a2: f32,
        src2: &[f32],
        a3: f32,
        src3: &[f32],
        a4: f32,
        src4: &[f32],
    ) {
        let n = dst
            .len()
            .min(src1.len())
            .min(src2.len())
            .min(src3.len())
            .min(src4.len());
        let (av1, av2) = (_mm256_set1_ps(a1), _mm256_set1_ps(a2));
        let (av3, av4) = (_mm256_set1_ps(a3), _mm256_set1_ps(a4));
        let dp = dst.as_mut_ptr();
        let (s1, s2, s3, s4) = (src1.as_ptr(), src2.as_ptr(), src3.as_ptr(), src4.as_ptr());
        let mut i = 0;
        while i + 8 <= n {
            let mut r = _mm256_add_ps(
                _mm256_loadu_ps(dp.add(i)),
                _mm256_mul_ps(av1, _mm256_loadu_ps(s1.add(i))),
            );
            r = _mm256_add_ps(r, _mm256_mul_ps(av2, _mm256_loadu_ps(s2.add(i))));
            r = _mm256_add_ps(r, _mm256_mul_ps(av3, _mm256_loadu_ps(s3.add(i))));
            r = _mm256_add_ps(r, _mm256_mul_ps(av4, _mm256_loadu_ps(s4.add(i))));
            _mm256_storeu_ps(dp.add(i), r);
            i += 8;
        }
        while i < n {
            *dp.add(i) =
                *dp.add(i) + a1 * *s1.add(i) + a2 * *s2.add(i) + a3 * *s3.add(i) + a4 * *s4.add(i);
            i += 1;
        }
    }

    /// # Safety
    ///
    /// Caller must have verified AVX-512F support
    /// (`is_x86_feature_detected!`).
    #[target_feature(enable = "avx512f")]
    pub unsafe fn scale_canonical_f64_512(dst: &mut [f64], a: f64, src: &[f64]) {
        let n = dst.len().min(src.len());
        let av = _mm512_set1_pd(a);
        let zero = _mm512_setzero_pd();
        let (dp, sp) = (dst.as_mut_ptr(), src.as_ptr());
        let mut i = 0;
        while i + 8 <= n {
            let r = _mm512_add_pd(zero, _mm512_mul_pd(av, _mm512_loadu_pd(sp.add(i))));
            _mm512_storeu_pd(dp.add(i), r);
            i += 8;
        }
        while i < n {
            *dp.add(i) = 0.0 + a * *sp.add(i);
            i += 1;
        }
    }

    /// # Safety
    ///
    /// Caller must have verified AVX support (`is_x86_feature_detected!`).
    #[target_feature(enable = "avx")]
    pub unsafe fn axpy_f32(dst: &mut [f32], a: f32, src: &[f32]) {
        let n = dst.len().min(src.len());
        let av = _mm256_set1_ps(a);
        let (dp, sp) = (dst.as_mut_ptr(), src.as_ptr());
        let mut i = 0;
        while i + 16 <= n {
            let r0 = _mm256_add_ps(
                _mm256_loadu_ps(dp.add(i)),
                _mm256_mul_ps(av, _mm256_loadu_ps(sp.add(i))),
            );
            let r1 = _mm256_add_ps(
                _mm256_loadu_ps(dp.add(i + 8)),
                _mm256_mul_ps(av, _mm256_loadu_ps(sp.add(i + 8))),
            );
            _mm256_storeu_ps(dp.add(i), r0);
            _mm256_storeu_ps(dp.add(i + 8), r1);
            i += 16;
        }
        while i < n {
            *dp.add(i) = *dp.add(i) + a * *sp.add(i);
            i += 1;
        }
    }

    /// # Safety
    ///
    /// Caller must have verified AVX support (`is_x86_feature_detected!`).
    #[target_feature(enable = "avx")]
    pub unsafe fn scale_canonical_f32(dst: &mut [f32], a: f32, src: &[f32]) {
        let n = dst.len().min(src.len());
        let av = _mm256_set1_ps(a);
        let zero = _mm256_setzero_ps();
        let (dp, sp) = (dst.as_mut_ptr(), src.as_ptr());
        let mut i = 0;
        while i + 16 <= n {
            let r0 = _mm256_add_ps(zero, _mm256_mul_ps(av, _mm256_loadu_ps(sp.add(i))));
            let r1 = _mm256_add_ps(zero, _mm256_mul_ps(av, _mm256_loadu_ps(sp.add(i + 8))));
            _mm256_storeu_ps(dp.add(i), r0);
            _mm256_storeu_ps(dp.add(i + 8), r1);
            i += 16;
        }
        while i < n {
            *dp.add(i) = 0.0 + a * *sp.add(i);
            i += 1;
        }
    }
}

impl Scalar for f32 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const NEG_INFINITY: Self = f32::NEG_INFINITY;

    #[inline]
    fn from_f64(v: f64) -> Self {
        v as f32
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self as f64
    }
    #[inline]
    fn abs(self) -> Self {
        f32::abs(self)
    }
    #[inline]
    fn sqrt(self) -> Self {
        f32::sqrt(self)
    }
    #[inline]
    fn exp(self) -> Self {
        f32::exp(self)
    }
    #[inline]
    fn ln(self) -> Self {
        f32::ln(self)
    }
    #[inline]
    fn tanh(self) -> Self {
        f32::tanh(self)
    }
    #[inline]
    fn powi(self, n: i32) -> Self {
        f32::powi(self, n)
    }
    #[inline]
    fn maximum(self, other: Self) -> Self {
        f32::max(self, other)
    }
    #[inline]
    fn minimum(self, other: Self) -> Self {
        f32::min(self, other)
    }
    #[inline]
    fn is_finite(self) -> bool {
        f32::is_finite(self)
    }
    #[inline]
    fn epsilon() -> Self {
        f32::EPSILON
    }
    #[inline]
    fn slice_axpy(dst: &mut [Self], a: Self, src: &[Self]) {
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx") {
            // SAFETY: AVX support just verified.
            unsafe { avx::axpy_f32(dst, a, src) };
            return;
        }
        for (d, s) in dst.iter_mut().zip(src) {
            *d += a * *s;
        }
    }
    #[inline]
    fn slice_axpy2(dst: &mut [Self], a1: Self, src1: &[Self], a2: Self, src2: &[Self]) {
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx") {
            // SAFETY: AVX support just verified.
            unsafe { avx::axpy2_f32(dst, a1, src1, a2, src2) };
            return;
        }
        let n = dst.len().min(src1.len()).min(src2.len());
        for i in 0..n {
            dst[i] = dst[i] + a1 * src1[i] + a2 * src2[i];
        }
    }
    #[allow(clippy::too_many_arguments)]
    #[inline]
    fn slice_axpy4(
        dst: &mut [Self],
        a1: Self,
        src1: &[Self],
        a2: Self,
        src2: &[Self],
        a3: Self,
        src3: &[Self],
        a4: Self,
        src4: &[Self],
    ) {
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx") {
            // SAFETY: AVX support just verified.
            unsafe { avx::axpy4_f32(dst, a1, src1, a2, src2, a3, src3, a4, src4) };
            return;
        }
        let n = dst
            .len()
            .min(src1.len())
            .min(src2.len())
            .min(src3.len())
            .min(src4.len());
        for i in 0..n {
            dst[i] = dst[i] + a1 * src1[i] + a2 * src2[i] + a3 * src3[i] + a4 * src4[i];
        }
    }
    #[inline]
    fn slice_scale_canonical(dst: &mut [Self], a: Self, src: &[Self]) {
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx") {
            // SAFETY: AVX support just verified.
            unsafe { avx::scale_canonical_f32(dst, a, src) };
            return;
        }
        for (d, s) in dst.iter_mut().zip(src) {
            *d = Self::ZERO + a * *s;
        }
    }
}

impl Scalar for f64 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const NEG_INFINITY: Self = f64::NEG_INFINITY;

    #[inline]
    fn from_f64(v: f64) -> Self {
        v
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline]
    fn abs(self) -> Self {
        f64::abs(self)
    }
    #[inline]
    fn sqrt(self) -> Self {
        f64::sqrt(self)
    }
    #[inline]
    fn exp(self) -> Self {
        f64::exp(self)
    }
    #[inline]
    fn ln(self) -> Self {
        f64::ln(self)
    }
    #[inline]
    fn tanh(self) -> Self {
        f64::tanh(self)
    }
    #[inline]
    fn powi(self, n: i32) -> Self {
        f64::powi(self, n)
    }
    #[inline]
    fn maximum(self, other: Self) -> Self {
        f64::max(self, other)
    }
    #[inline]
    fn minimum(self, other: Self) -> Self {
        f64::min(self, other)
    }
    #[inline]
    fn is_finite(self) -> bool {
        f64::is_finite(self)
    }
    #[inline]
    fn epsilon() -> Self {
        f64::EPSILON
    }
    #[inline]
    fn slice_axpy(dst: &mut [Self], a: Self, src: &[Self]) {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx512f") {
                // SAFETY: AVX-512F support just verified.
                unsafe { avx::axpy_f64_512(dst, a, src) };
                return;
            }
            if std::arch::is_x86_feature_detected!("avx") {
                // SAFETY: AVX support just verified.
                unsafe { avx::axpy_f64(dst, a, src) };
                return;
            }
        }
        for (d, s) in dst.iter_mut().zip(src) {
            *d += a * *s;
        }
    }
    #[inline]
    fn slice_axpy2(dst: &mut [Self], a1: Self, src1: &[Self], a2: Self, src2: &[Self]) {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx512f") {
                // SAFETY: AVX-512F support just verified.
                unsafe { avx::axpy2_f64_512(dst, a1, src1, a2, src2) };
                return;
            }
            if std::arch::is_x86_feature_detected!("avx") {
                // SAFETY: AVX support just verified.
                unsafe { avx::axpy2_f64(dst, a1, src1, a2, src2) };
                return;
            }
        }
        let n = dst.len().min(src1.len()).min(src2.len());
        for i in 0..n {
            dst[i] = dst[i] + a1 * src1[i] + a2 * src2[i];
        }
    }
    #[allow(clippy::too_many_arguments)]
    #[inline]
    fn slice_axpy4(
        dst: &mut [Self],
        a1: Self,
        src1: &[Self],
        a2: Self,
        src2: &[Self],
        a3: Self,
        src3: &[Self],
        a4: Self,
        src4: &[Self],
    ) {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx512f") {
                // SAFETY: AVX-512F support just verified.
                unsafe { avx::axpy4_f64_512(dst, a1, src1, a2, src2, a3, src3, a4, src4) };
                return;
            }
            if std::arch::is_x86_feature_detected!("avx") {
                // SAFETY: AVX support just verified.
                unsafe { avx::axpy4_f64(dst, a1, src1, a2, src2, a3, src3, a4, src4) };
                return;
            }
        }
        let n = dst
            .len()
            .min(src1.len())
            .min(src2.len())
            .min(src3.len())
            .min(src4.len());
        for i in 0..n {
            dst[i] = dst[i] + a1 * src1[i] + a2 * src2[i] + a3 * src3[i] + a4 * src4[i];
        }
    }
    #[inline]
    fn slice_scale_canonical(dst: &mut [Self], a: Self, src: &[Self]) {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx512f") {
                // SAFETY: AVX-512F support just verified.
                unsafe { avx::scale_canonical_f64_512(dst, a, src) };
                return;
            }
            if std::arch::is_x86_feature_detected!("avx") {
                // SAFETY: AVX support just verified.
                unsafe { avx::scale_canonical_f64(dst, a, src) };
                return;
            }
        }
        for (d, s) in dst.iter_mut().zip(src) {
            *d = Self::ZERO + a * *s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise<S: Scalar>() {
        assert_eq!(S::ZERO + S::ONE, S::ONE);
        assert_eq!(S::ONE * S::ONE, S::ONE);
        assert_eq!(S::from_f64(2.0).to_f64(), 2.0);
        assert_eq!(S::from_usize(3).to_f64(), 3.0);
        assert_eq!(S::from_f64(-2.0).abs().to_f64(), 2.0);
        assert!((S::from_f64(4.0).sqrt().to_f64() - 2.0).abs() < 1e-6);
        assert!((S::from_f64(0.0).exp().to_f64() - 1.0).abs() < 1e-6);
        assert!((S::from_f64(1.0).ln().to_f64()).abs() < 1e-6);
        assert!((S::from_f64(0.0).tanh().to_f64()).abs() < 1e-12);
        assert_eq!(S::from_f64(2.0).powi(3).to_f64(), 8.0);
        assert_eq!(S::from_f64(1.0).maximum(S::from_f64(2.0)).to_f64(), 2.0);
        assert_eq!(S::from_f64(1.0).minimum(S::from_f64(2.0)).to_f64(), 1.0);
        assert!(S::ONE.is_finite());
        assert!(!S::NEG_INFINITY.is_finite());
        assert!(S::NEG_INFINITY < S::from_f64(-1e30));
        assert!(S::epsilon() > S::ZERO);
    }

    #[test]
    fn f32_satisfies_contract() {
        exercise::<f32>();
    }

    #[test]
    fn f64_satisfies_contract() {
        exercise::<f64>();
    }

    #[test]
    fn sum_folds_over_iterator() {
        let xs = [1.0f32, 2.0, 3.0];
        let s: f32 = xs.iter().copied().sum();
        assert_eq!(s, 6.0);
    }

    /// The SIMD overrides must be bit-for-bit identical to the scalar
    /// default bodies — including the `-0.0 → +0.0` canonicalization of
    /// `slice_scale_canonical` and tail elements past the vector width.
    #[test]
    fn slice_kernels_match_scalar_loops_bit_for_bit() {
        // 37 elements: covers the unrolled body, the single-vector tail,
        // and the scalar tail for both 4-lane f64 and 8-lane f32.
        let src_f64: Vec<f64> = (0..37)
            .map(|i| match i % 5 {
                0 => 0.0,
                1 => -0.0,
                2 => 1.5 - i as f64,
                3 => i as f64 * 0.3,
                _ => -(i as f64) * 0.7,
            })
            .collect();
        for a in [0.0f64, -0.0, 2.5, -1.25] {
            let mut dst = vec![0.125f64; 37];
            let mut expect = dst.clone();
            f64::slice_axpy(&mut dst, a, &src_f64);
            for (d, s) in expect.iter_mut().zip(&src_f64) {
                *d += a * *s;
            }
            for (x, y) in dst.iter().zip(&expect) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
            f64::slice_scale_canonical(&mut dst, a, &src_f64);
            for (d, s) in expect.iter_mut().zip(&src_f64) {
                *d = 0.0 + a * *s;
            }
            for (x, y) in dst.iter().zip(&expect) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
            // axpy2 == the two sequential axpys it replaces, bit-for-bit.
            let src2: Vec<f64> = src_f64.iter().rev().copied().collect();
            let mut paired = dst.clone();
            f64::slice_axpy2(&mut paired, a, &src_f64, -0.75, &src2);
            f64::slice_axpy(&mut dst, a, &src_f64);
            f64::slice_axpy(&mut dst, -0.75, &src2);
            for (x, y) in paired.iter().zip(&dst) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
            // axpy4 == the four sequential axpys it replaces, bit-for-bit.
            let src3: Vec<f64> = src_f64.iter().map(|v| v * 0.5 - 0.2).collect();
            let src4: Vec<f64> = src_f64.iter().map(|v| 1.0 - v).collect();
            let mut quad = dst.clone();
            f64::slice_axpy4(
                &mut quad, a, &src_f64, -0.75, &src2, 0.3, &src3, -1.5, &src4,
            );
            f64::slice_axpy(&mut dst, a, &src_f64);
            f64::slice_axpy(&mut dst, -0.75, &src2);
            f64::slice_axpy(&mut dst, 0.3, &src3);
            f64::slice_axpy(&mut dst, -1.5, &src4);
            for (x, y) in quad.iter().zip(&dst) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        let src_f32: Vec<f32> = src_f64.iter().map(|&v| v as f32).collect();
        for a in [0.0f32, -0.0, 2.5, -1.25] {
            let mut dst = vec![0.125f32; 37];
            let mut expect = dst.clone();
            f32::slice_axpy(&mut dst, a, &src_f32);
            for (d, s) in expect.iter_mut().zip(&src_f32) {
                *d += a * *s;
            }
            for (x, y) in dst.iter().zip(&expect) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
            f32::slice_scale_canonical(&mut dst, a, &src_f32);
            for (d, s) in expect.iter_mut().zip(&src_f32) {
                *d = 0.0 + a * *s;
            }
            for (x, y) in dst.iter().zip(&expect) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
            let src2: Vec<f32> = src_f32.iter().rev().copied().collect();
            let mut paired = dst.clone();
            f32::slice_axpy2(&mut paired, a, &src_f32, -0.75, &src2);
            f32::slice_axpy(&mut dst, a, &src_f32);
            f32::slice_axpy(&mut dst, -0.75, &src2);
            for (x, y) in paired.iter().zip(&dst) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
            let src3: Vec<f32> = src_f32.iter().map(|v| v * 0.5 - 0.2).collect();
            let src4: Vec<f32> = src_f32.iter().map(|v| 1.0 - v).collect();
            let mut quad = dst.clone();
            f32::slice_axpy4(
                &mut quad, a, &src_f32, -0.75, &src2, 0.3, &src3, -1.5, &src4,
            );
            f32::slice_axpy(&mut dst, a, &src_f32);
            f32::slice_axpy(&mut dst, -0.75, &src2);
            f32::slice_axpy(&mut dst, 0.3, &src3);
            f32::slice_axpy(&mut dst, -1.5, &src4);
            for (x, y) in quad.iter().zip(&dst) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }
}
