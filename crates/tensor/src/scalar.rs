//! The [`Scalar`] abstraction over floating-point element types.
//!
//! All linear algebra in this workspace is generic over `Scalar` so that
//! models can train in `f32` (matching GPU practice in the paper) while test
//! oracles (finite differences, exactness bounds) run in `f64`.

use std::fmt::{Debug, Display};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A floating-point scalar type usable as the element of vectors, matrices,
/// and tensors throughout the BPPSA workspace.
///
/// This trait is implemented for [`f32`] and [`f64`]; it is sealed in spirit
/// (implementing it for other types is unsupported) but left open so that
/// downstream experiments with custom numeric types remain possible.
///
/// # Examples
///
/// ```
/// use bppsa_tensor::Scalar;
///
/// fn double<S: Scalar>(x: S) -> S {
///     x + x
/// }
/// assert_eq!(double(2.0_f32), 4.0);
/// assert_eq!(double(2.0_f64), 4.0);
/// ```
pub trait Scalar:
    Copy
    + Clone
    + Debug
    + Display
    + Default
    + PartialEq
    + PartialOrd
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Sum
    + Send
    + Sync
    + 'static
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Negative infinity (used by max-pooling as the fold seed).
    const NEG_INFINITY: Self;

    /// Converts from `f64`, rounding to the nearest representable value.
    fn from_f64(v: f64) -> Self;
    /// Converts to `f64` exactly (both supported types embed into `f64`).
    fn to_f64(self) -> f64;
    /// Converts from `usize` (used for averaging and normalization factors).
    fn from_usize(v: usize) -> Self {
        Self::from_f64(v as f64)
    }

    /// Absolute value.
    fn abs(self) -> Self;
    /// Square root.
    fn sqrt(self) -> Self;
    /// Natural exponential.
    fn exp(self) -> Self;
    /// Natural logarithm.
    fn ln(self) -> Self;
    /// Hyperbolic tangent (the RNN activation in the paper's Equation 9).
    fn tanh(self) -> Self;
    /// Integer power.
    fn powi(self, n: i32) -> Self;
    /// The larger of `self` and `other` (NaN-propagating comparisons avoided).
    fn maximum(self, other: Self) -> Self;
    /// The smaller of `self` and `other`.
    fn minimum(self, other: Self) -> Self;
    /// Whether the value is finite (not NaN or infinite).
    fn is_finite(self) -> bool;
    /// Machine epsilon for the type.
    fn epsilon() -> Self;
}

impl Scalar for f32 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const NEG_INFINITY: Self = f32::NEG_INFINITY;

    #[inline]
    fn from_f64(v: f64) -> Self {
        v as f32
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self as f64
    }
    #[inline]
    fn abs(self) -> Self {
        f32::abs(self)
    }
    #[inline]
    fn sqrt(self) -> Self {
        f32::sqrt(self)
    }
    #[inline]
    fn exp(self) -> Self {
        f32::exp(self)
    }
    #[inline]
    fn ln(self) -> Self {
        f32::ln(self)
    }
    #[inline]
    fn tanh(self) -> Self {
        f32::tanh(self)
    }
    #[inline]
    fn powi(self, n: i32) -> Self {
        f32::powi(self, n)
    }
    #[inline]
    fn maximum(self, other: Self) -> Self {
        f32::max(self, other)
    }
    #[inline]
    fn minimum(self, other: Self) -> Self {
        f32::min(self, other)
    }
    #[inline]
    fn is_finite(self) -> bool {
        f32::is_finite(self)
    }
    #[inline]
    fn epsilon() -> Self {
        f32::EPSILON
    }
}

impl Scalar for f64 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const NEG_INFINITY: Self = f64::NEG_INFINITY;

    #[inline]
    fn from_f64(v: f64) -> Self {
        v
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline]
    fn abs(self) -> Self {
        f64::abs(self)
    }
    #[inline]
    fn sqrt(self) -> Self {
        f64::sqrt(self)
    }
    #[inline]
    fn exp(self) -> Self {
        f64::exp(self)
    }
    #[inline]
    fn ln(self) -> Self {
        f64::ln(self)
    }
    #[inline]
    fn tanh(self) -> Self {
        f64::tanh(self)
    }
    #[inline]
    fn powi(self, n: i32) -> Self {
        f64::powi(self, n)
    }
    #[inline]
    fn maximum(self, other: Self) -> Self {
        f64::max(self, other)
    }
    #[inline]
    fn minimum(self, other: Self) -> Self {
        f64::min(self, other)
    }
    #[inline]
    fn is_finite(self) -> bool {
        f64::is_finite(self)
    }
    #[inline]
    fn epsilon() -> Self {
        f64::EPSILON
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise<S: Scalar>() {
        assert_eq!(S::ZERO + S::ONE, S::ONE);
        assert_eq!(S::ONE * S::ONE, S::ONE);
        assert_eq!(S::from_f64(2.0).to_f64(), 2.0);
        assert_eq!(S::from_usize(3).to_f64(), 3.0);
        assert_eq!(S::from_f64(-2.0).abs().to_f64(), 2.0);
        assert!((S::from_f64(4.0).sqrt().to_f64() - 2.0).abs() < 1e-6);
        assert!((S::from_f64(0.0).exp().to_f64() - 1.0).abs() < 1e-6);
        assert!((S::from_f64(1.0).ln().to_f64()).abs() < 1e-6);
        assert!((S::from_f64(0.0).tanh().to_f64()).abs() < 1e-12);
        assert_eq!(S::from_f64(2.0).powi(3).to_f64(), 8.0);
        assert_eq!(S::from_f64(1.0).maximum(S::from_f64(2.0)).to_f64(), 2.0);
        assert_eq!(S::from_f64(1.0).minimum(S::from_f64(2.0)).to_f64(), 1.0);
        assert!(S::ONE.is_finite());
        assert!(!S::NEG_INFINITY.is_finite());
        assert!(S::NEG_INFINITY < S::from_f64(-1e30));
        assert!(S::epsilon() > S::ZERO);
    }

    #[test]
    fn f32_satisfies_contract() {
        exercise::<f32>();
    }

    #[test]
    fn f64_satisfies_contract() {
        exercise::<f64>();
    }

    #[test]
    fn sum_folds_over_iterator() {
        let xs = [1.0f32, 2.0, 3.0];
        let s: f32 = xs.iter().copied().sum();
        assert_eq!(s, 6.0);
    }
}
