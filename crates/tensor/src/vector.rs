//! Dense column vectors.
//!
//! In the BPPSA formulation the gradient `∇x_n l` seeding the scan is a
//! column vector; every `∇x_i l` produced by the scan is one as well.

use crate::{Matrix, Scalar, ShapeError};
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense column vector of scalars.
///
/// # Examples
///
/// ```
/// use bppsa_tensor::Vector;
///
/// let v = Vector::from_vec(vec![1.0_f32, 2.0, 3.0]);
/// assert_eq!(v.len(), 3);
/// assert_eq!(v.dot(&v), 14.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Vector<S> {
    data: Vec<S>,
}

impl<S: Scalar> Vector<S> {
    /// Creates a zero vector of length `len`.
    pub fn zeros(len: usize) -> Self {
        Self {
            data: vec![S::ZERO; len],
        }
    }

    /// Creates a vector filled with `value`.
    pub fn filled(len: usize, value: S) -> Self {
        Self {
            data: vec![value; len],
        }
    }

    /// Wraps an existing buffer.
    pub fn from_vec(data: Vec<S>) -> Self {
        Self { data }
    }

    /// Creates a vector by evaluating `f` at each index.
    pub fn from_fn(len: usize, mut f: impl FnMut(usize) -> S) -> Self {
        Self {
            data: (0..len).map(&mut f).collect(),
        }
    }

    /// Creates the `i`-th standard basis vector of length `len`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn one_hot(len: usize, i: usize) -> Self {
        assert!(i < len, "one_hot index {i} out of range for length {len}");
        let mut v = Self::zeros(len);
        v.data[i] = S::ONE;
        v
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the vector has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying buffer.
    pub fn as_slice(&self) -> &[S] {
        &self.data
    }

    /// Mutable view of the underlying buffer.
    pub fn as_mut_slice(&mut self) -> &mut [S] {
        &mut self.data
    }

    /// Consumes the vector and returns the underlying buffer.
    pub fn into_vec(self) -> Vec<S> {
        self.data
    }

    /// Iterates over elements.
    pub fn iter(&self) -> std::slice::Iter<'_, S> {
        self.data.iter()
    }

    /// Dot product `self · other`.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn dot(&self, other: &Self) -> S {
        assert_eq!(self.len(), other.len(), "dot: length mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| a * b)
            .sum()
    }

    /// Elementwise sum `self + other`, allocating a new vector.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn add(&self, other: &Self) -> Self {
        assert_eq!(self.len(), other.len(), "add: length mismatch");
        Self::from_fn(self.len(), |i| self.data[i] + other.data[i])
    }

    /// Elementwise difference `self - other`, allocating a new vector.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn sub(&self, other: &Self) -> Self {
        assert_eq!(self.len(), other.len(), "sub: length mismatch");
        Self::from_fn(self.len(), |i| self.data[i] - other.data[i])
    }

    /// In-place `self += alpha * other` (the BLAS `axpy`).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn axpy(&mut self, alpha: S, other: &Self) {
        assert_eq!(self.len(), other.len(), "axpy: length mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Returns `self` scaled by `alpha`.
    pub fn scaled(&self, alpha: S) -> Self {
        Self::from_fn(self.len(), |i| self.data[i] * alpha)
    }

    /// Scales in place by `alpha`.
    pub fn scale_in_place(&mut self, alpha: S) {
        for a in &mut self.data {
            *a *= alpha;
        }
    }

    /// Applies `f` elementwise, allocating a new vector.
    pub fn map(&self, mut f: impl FnMut(S) -> S) -> Self {
        Self {
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Euclidean norm.
    pub fn norm(&self) -> S {
        self.dot(self).sqrt()
    }

    /// Largest absolute element, or zero for an empty vector.
    pub fn max_abs(&self) -> S {
        self.data
            .iter()
            .fold(S::ZERO, |acc, &x| acc.maximum(x.abs()))
    }

    /// Largest absolute elementwise difference to `other`
    /// (the `‖a − b‖∞` used by exactness tests).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn max_abs_diff(&self, other: &Self) -> S {
        assert_eq!(self.len(), other.len(), "max_abs_diff: length mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .fold(S::ZERO, |acc, (&a, &b)| acc.maximum((a - b).abs()))
    }

    /// Whether all elements are within `tol` of `other`'s.
    pub fn approx_eq(&self, other: &Self, tol: S) -> bool {
        self.len() == other.len() && self.max_abs_diff(other) <= tol
    }

    /// Index of the largest element (first occurrence). Returns `None` for an
    /// empty vector.
    pub fn argmax(&self) -> Option<usize> {
        if self.data.is_empty() {
            return None;
        }
        let mut best = 0;
        for i in 1..self.data.len() {
            if self.data[i] > self.data[best] {
                best = i;
            }
        }
        Some(best)
    }

    /// Sum of all elements.
    pub fn sum(&self) -> S {
        self.data.iter().copied().sum()
    }

    /// Outer product `self ⊗ other`, producing a `self.len() × other.len()`
    /// matrix. Used for parameter gradients such as `∇W = δ ⊗ x`.
    pub fn outer(&self, other: &Self) -> Matrix<S> {
        let mut m = Matrix::zeros(self.len(), other.len());
        for i in 0..self.len() {
            let si = self.data[i];
            let row = m.row_mut(i);
            for (j, r) in row.iter_mut().enumerate() {
                *r = si * other.data[j];
            }
        }
        m
    }

    /// Reinterprets the vector as an `len × 1` column matrix.
    pub fn to_column_matrix(&self) -> Matrix<S> {
        Matrix::from_vec(self.len(), 1, self.data.clone())
    }

    /// Concatenates several vectors into one (batching helper).
    pub fn concat(parts: &[&Vector<S>]) -> Self {
        let mut data = Vec::with_capacity(parts.iter().map(|p| p.len()).sum());
        for p in parts {
            data.extend_from_slice(p.as_slice());
        }
        Self { data }
    }

    /// Splits into `n` equal consecutive chunks (inverse of a same-sized
    /// [`Vector::concat`]).
    ///
    /// # Panics
    ///
    /// Panics if the length is not divisible by `n`.
    pub fn split_even(&self, n: usize) -> Vec<Vector<S>> {
        assert!(
            n > 0 && self.len().is_multiple_of(n),
            "split_even: {} % {n} != 0",
            self.len()
        );
        let chunk = self.len() / n;
        self.data
            .chunks(chunk)
            .map(|c| Vector::from_vec(c.to_vec()))
            .collect()
    }

    /// Checks that the length equals `expected`, for fallible call sites.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] if the length differs from `expected`.
    pub fn expect_len(&self, expected: usize, context: &'static str) -> Result<(), ShapeError> {
        if self.len() == expected {
            Ok(())
        } else {
            Err(ShapeError::new(context, expected, self.len()))
        }
    }
}

impl<S: Scalar> Index<usize> for Vector<S> {
    type Output = S;
    fn index(&self, i: usize) -> &S {
        &self.data[i]
    }
}

impl<S: Scalar> IndexMut<usize> for Vector<S> {
    fn index_mut(&mut self, i: usize) -> &mut S {
        &mut self.data[i]
    }
}

impl<S: Scalar> From<Vec<S>> for Vector<S> {
    fn from(data: Vec<S>) -> Self {
        Self::from_vec(data)
    }
}

impl<S: Scalar> FromIterator<S> for Vector<S> {
    fn from_iter<I: IntoIterator<Item = S>>(iter: I) -> Self {
        Self {
            data: iter.into_iter().collect(),
        }
    }
}

impl<'a, S: Scalar> IntoIterator for &'a Vector<S> {
    type Item = &'a S;
    type IntoIter = std::slice::Iter<'a, S>;
    fn into_iter(self) -> Self::IntoIter {
        self.data.iter()
    }
}

impl<S: Scalar> fmt::Display for Vector<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, x) in self.data.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{x}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_len() {
        let v = Vector::<f32>::zeros(4);
        assert_eq!(v.len(), 4);
        assert!(!v.is_empty());
        assert!(v.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn one_hot_has_single_one() {
        let v = Vector::<f64>::one_hot(5, 2);
        assert_eq!(v.sum(), 1.0);
        assert_eq!(v[2], 1.0);
    }

    #[test]
    #[should_panic(expected = "one_hot index")]
    fn one_hot_out_of_range_panics() {
        let _ = Vector::<f32>::one_hot(3, 3);
    }

    #[test]
    fn dot_matches_manual() {
        let a = Vector::from_vec(vec![1.0f64, 2.0, 3.0]);
        let b = Vector::from_vec(vec![4.0f64, 5.0, 6.0]);
        assert_eq!(a.dot(&b), 32.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Vector::from_vec(vec![1.0f32, 1.0]);
        let b = Vector::from_vec(vec![2.0f32, 3.0]);
        a.axpy(2.0, &b);
        assert_eq!(a.as_slice(), &[5.0, 7.0]);
    }

    #[test]
    fn outer_product_shape_and_values() {
        let a = Vector::from_vec(vec![1.0f64, 2.0]);
        let b = Vector::from_vec(vec![3.0f64, 4.0, 5.0]);
        let m = a.outer(&b);
        assert_eq!((m.rows(), m.cols()), (2, 3));
        assert_eq!(m.get(1, 2), 10.0);
    }

    #[test]
    fn argmax_first_occurrence() {
        let v = Vector::from_vec(vec![1.0f32, 3.0, 3.0, 2.0]);
        assert_eq!(v.argmax(), Some(1));
        assert_eq!(Vector::<f32>::zeros(0).argmax(), None);
    }

    #[test]
    fn max_abs_diff_is_infinity_norm() {
        let a = Vector::from_vec(vec![1.0f64, -5.0]);
        let b = Vector::from_vec(vec![1.5f64, -4.0]);
        assert_eq!(a.max_abs_diff(&b), 1.0);
        assert!(a.approx_eq(&b, 1.0));
        assert!(!a.approx_eq(&b, 0.5));
    }

    #[test]
    fn expect_len_errors_on_mismatch() {
        let v = Vector::<f32>::zeros(3);
        assert!(v.expect_len(3, "t").is_ok());
        assert!(v.expect_len(4, "t").is_err());
    }

    #[test]
    fn display_is_nonempty() {
        let v = Vector::from_vec(vec![1.0f32, 2.0]);
        assert_eq!(format!("{v}"), "[1, 2]");
    }

    #[test]
    fn from_iterator_collects() {
        let v: Vector<f64> = (0..3).map(|i| i as f64).collect();
        assert_eq!(v.as_slice(), &[0.0, 1.0, 2.0]);
    }

    #[test]
    fn concat_and_split_round_trip() {
        let a = Vector::from_vec(vec![1.0f64, 2.0]);
        let b = Vector::from_vec(vec![3.0f64, 4.0]);
        let c = Vector::concat(&[&a, &b]);
        assert_eq!(c.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
        let parts = c.split_even(2);
        assert_eq!(parts, vec![a, b]);
    }

    #[test]
    #[should_panic(expected = "split_even")]
    fn split_even_rejects_indivisible() {
        let _ = Vector::from_vec(vec![1.0f32, 2.0, 3.0]).split_even(2);
    }
}
