//! Error types shared by the dense linear-algebra substrate.

use std::error::Error;
use std::fmt;

/// Error returned when the shape of an operand does not match what an
/// operation requires (e.g. a matrix–vector product with mismatched inner
/// dimensions, or constructing a matrix from a buffer of the wrong length).
///
/// # Examples
///
/// ```
/// use bppsa_tensor::{Matrix, ShapeError};
///
/// let err: ShapeError = Matrix::<f32>::try_from_vec(2, 2, vec![1.0; 3]).unwrap_err();
/// assert!(err.to_string().contains("expected"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    context: &'static str,
    expected: String,
    actual: String,
}

impl ShapeError {
    /// Creates a new shape error with a short operation context and the
    /// expected/actual shapes rendered as strings.
    pub fn new(context: &'static str, expected: impl fmt::Debug, actual: impl fmt::Debug) -> Self {
        Self {
            context,
            expected: format!("{expected:?}"),
            actual: format!("{actual:?}"),
        }
    }

    /// The operation that rejected the operands (e.g. `"matmul"`).
    pub fn context(&self) -> &str {
        self.context
    }
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "shape mismatch in {}: expected {}, got {}",
            self.context, self.expected, self.actual
        )
    }
}

impl Error for ShapeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_context_and_shapes() {
        let e = ShapeError::new("matmul", (2usize, 3usize), (4usize, 5usize));
        let s = e.to_string();
        assert!(s.contains("matmul"));
        assert!(s.contains("(2, 3)"));
        assert!(s.contains("(4, 5)"));
    }

    #[test]
    fn implements_std_error() {
        fn takes_err<E: std::error::Error>(_e: E) {}
        takes_err(ShapeError::new("t", 1usize, 2usize));
    }
}
