//! Dense N-dimensional tensors (row-major / C order).
//!
//! Convolutional activations in the paper are `(channels, height, width)`
//! volumes; batches add a leading dimension. This type keeps indexing simple
//! and explicit rather than generic over dimensionality.

use crate::{Scalar, ShapeError, Vector};
use std::fmt;

/// A dense N-dimensional tensor in row-major (C) order.
///
/// # Examples
///
/// ```
/// use bppsa_tensor::Tensor;
///
/// let t = Tensor::from_vec(vec![2, 3], vec![0.0_f32, 1.0, 2.0, 3.0, 4.0, 5.0]);
/// assert_eq!(t.at(&[1, 2]), 5.0);
/// assert_eq!(t.numel(), 6);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor<S> {
    shape: Vec<usize>,
    strides: Vec<usize>,
    data: Vec<S>,
}

fn compute_strides(shape: &[usize]) -> Vec<usize> {
    let mut strides = vec![1; shape.len()];
    for i in (0..shape.len().saturating_sub(1)).rev() {
        strides[i] = strides[i + 1] * shape[i + 1];
    }
    strides
}

impl<S: Scalar> Tensor<S> {
    /// Creates a zero tensor with the given shape.
    pub fn zeros(shape: impl Into<Vec<usize>>) -> Self {
        let shape = shape.into();
        let numel = shape.iter().product();
        let strides = compute_strides(&shape);
        Self {
            shape,
            strides,
            data: vec![S::ZERO; numel],
        }
    }

    /// Creates a tensor from a row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if the buffer length does not equal the product of `shape`.
    pub fn from_vec(shape: impl Into<Vec<usize>>, data: Vec<S>) -> Self {
        let shape = shape.into();
        let numel: usize = shape.iter().product();
        assert_eq!(
            data.len(),
            numel,
            "from_vec: buffer length {} does not match shape {shape:?}",
            data.len()
        );
        let strides = compute_strides(&shape);
        Self {
            shape,
            strides,
            data,
        }
    }

    /// Fallible variant of [`Tensor::from_vec`].
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] if the buffer length does not match `shape`.
    pub fn try_from_vec(shape: impl Into<Vec<usize>>, data: Vec<S>) -> Result<Self, ShapeError> {
        let shape = shape.into();
        let numel: usize = shape.iter().product();
        if data.len() != numel {
            return Err(ShapeError::new("tensor_from_vec", numel, data.len()));
        }
        let strides = compute_strides(&shape);
        Ok(Self {
            shape,
            strides,
            data,
        })
    }

    /// Creates a tensor by evaluating `f` at each flat (row-major) index.
    pub fn from_fn(shape: impl Into<Vec<usize>>, mut f: impl FnMut(usize) -> S) -> Self {
        let shape = shape.into();
        let numel: usize = shape.iter().product();
        let strides = compute_strides(&shape);
        Self {
            shape,
            strides,
            data: (0..numel).map(&mut f).collect(),
        }
    }

    /// The shape of the tensor.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// The row-major strides.
    pub fn strides(&self) -> &[usize] {
        &self.strides
    }

    /// Number of dimensions.
    pub fn ndim(&self) -> usize {
        self.shape.len()
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Immutable view of the underlying buffer.
    pub fn as_slice(&self) -> &[S] {
        &self.data
    }

    /// Mutable view of the underlying buffer.
    pub fn as_mut_slice(&mut self) -> &mut [S] {
        &mut self.data
    }

    /// Consumes the tensor and returns the buffer.
    pub fn into_vec(self) -> Vec<S> {
        self.data
    }

    /// Converts a multi-index to the flat row-major offset.
    ///
    /// # Panics
    ///
    /// Panics if `idx.len() != self.ndim()` or any coordinate is out of range.
    #[inline]
    pub fn offset(&self, idx: &[usize]) -> usize {
        assert_eq!(idx.len(), self.ndim(), "offset: wrong number of indices");
        let mut off = 0;
        for (d, (&i, &s)) in idx.iter().zip(&self.strides).enumerate() {
            assert!(
                i < self.shape[d],
                "offset: index {i} out of range for dim {d} (size {})",
                self.shape[d]
            );
            off += i * s;
        }
        off
    }

    /// Element at the multi-index `idx`.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range.
    #[inline]
    pub fn at(&self, idx: &[usize]) -> S {
        self.data[self.offset(idx)]
    }

    /// Mutable reference to the element at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range.
    #[inline]
    pub fn at_mut(&mut self, idx: &[usize]) -> &mut S {
        let off = self.offset(idx);
        &mut self.data[off]
    }

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshaped(&self, shape: impl Into<Vec<usize>>) -> Self {
        let shape = shape.into();
        let numel: usize = shape.iter().product();
        assert_eq!(
            numel,
            self.numel(),
            "reshaped: cannot reshape {:?} into {shape:?}",
            self.shape
        );
        Self::from_vec(shape, self.data.clone())
    }

    /// Flattens into a [`Vector`], cloning the buffer.
    pub fn to_vector(&self) -> Vector<S> {
        Vector::from_vec(self.data.clone())
    }

    /// Creates a 1-D tensor from a vector.
    pub fn from_vector(v: &Vector<S>) -> Self {
        Self::from_vec(vec![v.len()], v.as_slice().to_vec())
    }

    /// Applies `f` elementwise, allocating a new tensor.
    pub fn map(&self, mut f: impl FnMut(S) -> S) -> Self {
        Self {
            shape: self.shape.clone(),
            strides: self.strides.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Elementwise sum, allocating a new tensor.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add(&self, other: &Self) -> Self {
        assert_eq!(self.shape, other.shape, "add: shape mismatch");
        Self {
            shape: self.shape.clone(),
            strides: self.strides.clone(),
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| a + b)
                .collect(),
        }
    }

    /// In-place `self += alpha · other`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn axpy(&mut self, alpha: S, other: &Self) {
        assert_eq!(self.shape, other.shape, "axpy: shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Largest absolute elementwise difference to `other`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn max_abs_diff(&self, other: &Self) -> S {
        assert_eq!(self.shape, other.shape, "max_abs_diff: shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .fold(S::ZERO, |acc, (&a, &b)| acc.maximum((a - b).abs()))
    }

    /// Whether all elements are within `tol` of `other`'s.
    pub fn approx_eq(&self, other: &Self, tol: S) -> bool {
        self.shape == other.shape && self.max_abs_diff(other) <= tol
    }

    /// Sum of all elements.
    pub fn sum(&self) -> S {
        self.data.iter().copied().sum()
    }
}

impl<S: Scalar> fmt::Display for Tensor<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?} ({} elements)", self.shape, self.numel())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_are_row_major() {
        let t = Tensor::<f32>::zeros(vec![2, 3, 4]);
        assert_eq!(t.strides(), &[12, 4, 1]);
    }

    #[test]
    fn at_reads_row_major_order() {
        let t = Tensor::from_fn(vec![2, 3], |i| i as f64);
        assert_eq!(t.at(&[0, 0]), 0.0);
        assert_eq!(t.at(&[0, 2]), 2.0);
        assert_eq!(t.at(&[1, 0]), 3.0);
    }

    #[test]
    fn at_mut_writes() {
        let mut t = Tensor::<f32>::zeros(vec![2, 2]);
        *t.at_mut(&[1, 1]) = 7.0;
        assert_eq!(t.at(&[1, 1]), 7.0);
        assert_eq!(t.sum(), 7.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_index_panics() {
        let t = Tensor::<f32>::zeros(vec![2, 2]);
        let _ = t.at(&[2, 0]);
    }

    #[test]
    #[should_panic(expected = "wrong number of indices")]
    fn wrong_rank_index_panics() {
        let t = Tensor::<f32>::zeros(vec![2, 2]);
        let _ = t.at(&[0]);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_fn(vec![2, 6], |i| i as f32);
        let r = t.reshaped(vec![3, 4]);
        assert_eq!(r.shape(), &[3, 4]);
        assert_eq!(r.as_slice(), t.as_slice());
    }

    #[test]
    fn try_from_vec_validates() {
        assert!(Tensor::<f32>::try_from_vec(vec![2, 2], vec![0.0; 4]).is_ok());
        assert!(Tensor::<f32>::try_from_vec(vec![2, 2], vec![0.0; 3]).is_err());
    }

    #[test]
    fn vector_round_trip() {
        let t = Tensor::from_fn(vec![2, 2], |i| i as f64);
        let v = t.to_vector();
        let t2 = Tensor::from_vector(&v).reshaped(vec![2, 2]);
        assert_eq!(t, t2);
    }

    #[test]
    fn scalar_shape_tensor() {
        let t = Tensor::<f32>::zeros(Vec::<usize>::new());
        assert_eq!(t.numel(), 1);
        assert_eq!(t.at(&[]), 0.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::from_fn(vec![3], |i| i as f32);
        let b = Tensor::from_fn(vec![3], |_| 1.0f32);
        a.axpy(2.0, &b);
        assert_eq!(a.as_slice(), &[2.0, 3.0, 4.0]);
    }

    #[test]
    fn display_shows_shape() {
        let t = Tensor::<f32>::zeros(vec![2, 3]);
        assert!(format!("{t}").contains("[2, 3]"));
    }
}
