//! Dense row-major matrices with the GEMM/GEMV kernels used throughout the
//! workspace.
//!
//! The transposed Jacobians of the paper's Equation 5 are represented either
//! densely (this type) or sparsely ([`bppsa-sparse`]'s CSR); the scan operator
//! `A ⊙ B = B·A` bottoms out in [`Matrix::matmul`] / [`Matrix::matvec`] for
//! the dense case.

use crate::{Scalar, ShapeError, Vector};
use std::fmt;

/// A dense row-major matrix.
///
/// # Examples
///
/// ```
/// use bppsa_tensor::{Matrix, Vector};
///
/// let a = Matrix::from_rows(&[&[1.0_f64, 2.0], &[3.0, 4.0]]);
/// let x = Vector::from_vec(vec![1.0, 1.0]);
/// assert_eq!(a.matvec(&x).as_slice(), &[3.0, 7.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix<S> {
    rows: usize,
    cols: usize,
    data: Vec<S>,
}

impl<S: Scalar> Matrix<S> {
    /// Creates a `rows × cols` zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![S::ZERO; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, S::ONE);
        }
        m
    }

    /// Creates a matrix from a row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<S>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "from_vec: buffer length {} does not match {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Fallible variant of [`Matrix::from_vec`].
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] if `data.len() != rows * cols`.
    pub fn try_from_vec(rows: usize, cols: usize, data: Vec<S>) -> Result<Self, ShapeError> {
        if data.len() != rows * cols {
            return Err(ShapeError::new("from_vec", rows * cols, data.len()));
        }
        Ok(Self { rows, cols, data })
    }

    /// Creates a matrix by evaluating `f(row, col)` at each position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> S) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// Creates a matrix from row slices (all rows must have equal length).
    ///
    /// # Panics
    ///
    /// Panics if the rows have differing lengths.
    pub fn from_rows(rows: &[&[S]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "from_rows: ragged rows");
            data.extend_from_slice(row);
        }
        Self {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Creates a diagonal matrix from the given diagonal entries.
    pub fn from_diagonal(diag: &[S]) -> Self {
        let n = diag.len();
        let mut m = Self::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m.set(i, i, d);
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.rows * self.cols
    }

    /// Whether the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Element at `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> S {
        debug_assert!(i < self.rows && j < self.cols, "get({i},{j}) out of bounds");
        self.data[i * self.cols + j]
    }

    /// Sets the element at `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: S) {
        debug_assert!(i < self.rows && j < self.cols, "set({i},{j}) out of bounds");
        self.data[i * self.cols + j] = v;
    }

    /// Immutable view of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[S] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable view of row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [S] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a new vector.
    pub fn column(&self, j: usize) -> Vector<S> {
        Vector::from_fn(self.rows, |i| self.get(i, j))
    }

    /// Immutable view of the full row-major buffer.
    pub fn as_slice(&self) -> &[S] {
        &self.data
    }

    /// Mutable view of the full row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [S] {
        &mut self.data
    }

    /// Consumes the matrix and returns the row-major buffer.
    pub fn into_vec(self) -> Vec<S> {
        self.data
    }

    /// Returns the transpose as a new matrix.
    pub fn transposed(&self) -> Self {
        let mut t = Self::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t.set(j, i, self.get(i, j));
            }
        }
        t
    }

    /// Matrix–matrix product `self · other` (GEMM, ikj loop order).
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()`.
    pub fn matmul(&self, other: &Self) -> Self {
        assert_eq!(
            self.cols, other.rows,
            "matmul: inner dimensions differ ({}x{} · {}x{})",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Self::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            let a_row = self.row(i);
            // Split borrows: write into the i-th output row directly.
            let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
            for (k, &aik) in a_row.iter().enumerate() {
                if aik == S::ZERO {
                    continue;
                }
                let b_row = other.row(k);
                for (o, &bkj) in out_row.iter_mut().zip(b_row) {
                    *o += aik * bkj;
                }
            }
        }
        out
    }

    /// Matrix–vector product `self · x` (GEMV).
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != x.len()`.
    pub fn matvec(&self, x: &Vector<S>) -> Vector<S> {
        assert_eq!(
            self.cols,
            x.len(),
            "matvec: dimensions differ ({}x{} · len {})",
            self.rows,
            self.cols,
            x.len()
        );
        let xs = x.as_slice();
        Vector::from_fn(self.rows, |i| {
            self.row(i).iter().zip(xs).map(|(&a, &b)| a * b).sum()
        })
    }

    /// Transposed matrix–vector product `selfᵀ · x` without materializing the
    /// transpose.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows() != x.len()`.
    pub fn matvec_transposed(&self, x: &Vector<S>) -> Vector<S> {
        assert_eq!(
            self.rows,
            x.len(),
            "matvec_transposed: dimensions differ ({}x{})ᵀ · len {}",
            self.rows,
            self.cols,
            x.len()
        );
        let mut out = Vector::zeros(self.cols);
        for i in 0..self.rows {
            let xi = x[i];
            if xi == S::ZERO {
                continue;
            }
            let row = self.row(i);
            let os = out.as_mut_slice();
            for (o, &a) in os.iter_mut().zip(row) {
                *o += a * xi;
            }
        }
        out
    }

    /// Elementwise sum, allocating a new matrix.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add(&self, other: &Self) -> Self {
        assert_eq!(self.shape(), other.shape(), "add: shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| a + b)
            .collect();
        Self {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Elementwise difference, allocating a new matrix.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn sub(&self, other: &Self) -> Self {
        assert_eq!(self.shape(), other.shape(), "sub: shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| a - b)
            .collect();
        Self {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// In-place `self += alpha · other`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn axpy(&mut self, alpha: S, other: &Self) {
        assert_eq!(self.shape(), other.shape(), "axpy: shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Returns `self` scaled by `alpha`.
    pub fn scaled(&self, alpha: S) -> Self {
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| x * alpha).collect(),
        }
    }

    /// Scales in place by `alpha`.
    pub fn scale_in_place(&mut self, alpha: S) {
        for a in &mut self.data {
            *a *= alpha;
        }
    }

    /// Applies `f` elementwise, allocating a new matrix.
    pub fn map(&self, mut f: impl FnMut(S) -> S) -> Self {
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> S {
        self.data.iter().map(|&x| x * x).sum::<S>().sqrt()
    }

    /// Number of exactly-zero entries.
    pub fn count_zeros(&self) -> usize {
        self.data.iter().filter(|&&x| x == S::ZERO).count()
    }

    /// Number of non-zero entries.
    pub fn count_nonzeros(&self) -> usize {
        self.numel() - self.count_zeros()
    }

    /// Fraction of zero entries (the paper's "sparsity", Table 1).
    pub fn sparsity(&self) -> f64 {
        if self.numel() == 0 {
            return 0.0;
        }
        self.count_zeros() as f64 / self.numel() as f64
    }

    /// Largest absolute elementwise difference to `other`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn max_abs_diff(&self, other: &Self) -> S {
        assert_eq!(self.shape(), other.shape(), "max_abs_diff: shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .fold(S::ZERO, |acc, (&a, &b)| acc.maximum((a - b).abs()))
    }

    /// Whether all elements are within `tol` of `other`'s.
    pub fn approx_eq(&self, other: &Self, tol: S) -> bool {
        self.shape() == other.shape() && self.max_abs_diff(other) <= tol
    }
}

impl<S: Scalar> fmt::Display for Matrix<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "[{}x{}]", self.rows, self.cols)?;
        for i in 0..self.rows {
            write!(f, "  [")?;
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", self.get(i, j))?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat2x2() -> Matrix<f64> {
        Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])
    }

    #[test]
    fn identity_times_anything_is_identity_map() {
        let a = mat2x2();
        let i = Matrix::identity(2);
        assert_eq!(i.matmul(&a), a);
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    fn matmul_matches_manual() {
        let a = mat2x2();
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_rectangular_shapes() {
        let a = Matrix::<f32>::from_fn(2, 3, |i, j| (i * 3 + j) as f32);
        let b = Matrix::<f32>::from_fn(3, 4, |i, j| (i + j) as f32);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (2, 4));
        // c[0][0] = 0*0 + 1*1 + 2*2 = 5
        assert_eq!(c.get(0, 0), 5.0);
    }

    #[test]
    #[should_panic(expected = "matmul")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::<f32>::zeros(2, 3);
        let b = Matrix::<f32>::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn matvec_and_transposed_agree_with_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let x = Vector::from_vec(vec![1.0, -1.0]);
        let via_t = a.transposed().matvec(&x);
        let direct = a.matvec_transposed(&x);
        assert_eq!(via_t, direct);
        assert_eq!(direct.as_slice(), &[-3.0, -3.0, -3.0]);
    }

    #[test]
    fn transpose_is_involution() {
        let a = Matrix::<f64>::from_fn(3, 5, |i, j| (i * 31 + j * 7) as f64);
        assert_eq!(a.transposed().transposed(), a);
    }

    #[test]
    fn from_diagonal_sparsity() {
        let d = Matrix::from_diagonal(&[1.0f32, 2.0, 3.0, 0.0]);
        assert_eq!(d.shape(), (4, 4));
        // 16 entries, 3 non-zero.
        assert_eq!(d.count_nonzeros(), 3);
        assert!((d.sparsity() - 13.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn try_from_vec_rejects_bad_length() {
        assert!(Matrix::<f32>::try_from_vec(2, 2, vec![0.0; 4]).is_ok());
        assert!(Matrix::<f32>::try_from_vec(2, 2, vec![0.0; 5]).is_err());
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Matrix::identity(2);
        let b = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]);
        a.axpy(2.0, &b);
        assert_eq!(a, Matrix::from_rows(&[&[3.0, 2.0], &[2.0, 3.0]]));
        a.scale_in_place(0.5);
        assert_eq!(a.get(0, 0), 1.5);
    }

    #[test]
    fn column_extracts_values() {
        let a = mat2x2();
        assert_eq!(a.column(1).as_slice(), &[2.0, 4.0]);
    }

    #[test]
    fn frobenius_norm_of_identity() {
        let i = Matrix::<f64>::identity(4);
        assert!((i.frobenius_norm() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn matmul_associativity_small() {
        let a = Matrix::<f64>::from_fn(2, 3, |i, j| (i + j) as f64);
        let b = Matrix::<f64>::from_fn(3, 2, |i, j| (i * 2 + j) as f64);
        let c = Matrix::<f64>::from_fn(2, 2, |i, j| (i as f64) - (j as f64));
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        assert!(left.approx_eq(&right, 1e-12));
    }

    #[test]
    fn display_contains_dims() {
        let a = mat2x2();
        assert!(format!("{a}").contains("[2x2]"));
    }
}
