//! Deterministic random initialization helpers.
//!
//! Every experiment in the paper is "seeded with the same constant"; this
//! module funnels all randomness through seeded [`rand::rngs::StdRng`]
//! instances so baseline-vs-BPPSA comparisons start from bit-identical
//! parameters.

use crate::{Matrix, Scalar, Tensor, Vector};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Creates a deterministic RNG from a 64-bit seed.
///
/// # Examples
///
/// ```
/// use bppsa_tensor::init::seeded_rng;
/// use rand::Rng;
///
/// let mut a = seeded_rng(42);
/// let mut b = seeded_rng(42);
/// assert_eq!(a.random::<u64>(), b.random::<u64>());
/// ```
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Fills a slice with uniform values in `[-bound, bound)`.
pub fn fill_uniform<S: Scalar>(rng: &mut StdRng, out: &mut [S], bound: f64) {
    for x in out {
        *x = S::from_f64(rng.random_range(-bound..bound));
    }
}

/// Samples a vector with uniform entries in `[-bound, bound)`.
pub fn uniform_vector<S: Scalar>(rng: &mut StdRng, len: usize, bound: f64) -> Vector<S> {
    let mut v = Vector::zeros(len);
    fill_uniform(rng, v.as_mut_slice(), bound);
    v
}

/// Samples a matrix with uniform entries in `[-bound, bound)`.
pub fn uniform_matrix<S: Scalar>(
    rng: &mut StdRng,
    rows: usize,
    cols: usize,
    bound: f64,
) -> Matrix<S> {
    let mut m = Matrix::zeros(rows, cols);
    fill_uniform(rng, m.as_mut_slice(), bound);
    m
}

/// Samples a tensor with uniform entries in `[-bound, bound)`.
pub fn uniform_tensor<S: Scalar>(
    rng: &mut StdRng,
    shape: impl Into<Vec<usize>>,
    bound: f64,
) -> Tensor<S> {
    let mut t = Tensor::zeros(shape);
    fill_uniform(rng, t.as_mut_slice(), bound);
    t
}

/// Kaiming/He-style uniform bound for a layer with the given fan-in:
/// `1 / sqrt(fan_in)` (the PyTorch default for `Linear`/`Conv2d`).
pub fn kaiming_bound(fan_in: usize) -> f64 {
    if fan_in == 0 {
        0.0
    } else {
        1.0 / (fan_in as f64).sqrt()
    }
}

/// Samples a `rows × cols` weight matrix with the Kaiming-uniform bound
/// derived from `cols` (the fan-in of a dense layer).
pub fn kaiming_matrix<S: Scalar>(rng: &mut StdRng, rows: usize, cols: usize) -> Matrix<S> {
    uniform_matrix(rng, rows, cols, kaiming_bound(cols))
}

/// Samples standard-normal values via the Box–Muller transform (avoids
/// depending on `rand_distr`).
pub fn normal<S: Scalar>(rng: &mut StdRng) -> S {
    // Box–Muller needs u1 in (0, 1]; clamp away from zero.
    let u1: f64 = rng.random_range(f64::EPSILON..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    S::from_f64((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos())
}

/// Fills a slice with `mean + std · N(0, 1)` samples.
pub fn fill_normal<S: Scalar>(rng: &mut StdRng, out: &mut [S], mean: f64, std: f64) {
    for x in out {
        *x = S::from_f64(mean + std * normal::<f64>(rng));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_rng_is_deterministic() {
        let a: Vector<f32> = uniform_vector(&mut seeded_rng(7), 16, 1.0);
        let b: Vector<f32> = uniform_vector(&mut seeded_rng(7), 16, 1.0);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a: Vector<f64> = uniform_vector(&mut seeded_rng(1), 32, 1.0);
        let b: Vector<f64> = uniform_vector(&mut seeded_rng(2), 32, 1.0);
        assert!(a.max_abs_diff(&b) > 0.0);
    }

    #[test]
    fn uniform_respects_bound() {
        let m: Matrix<f64> = uniform_matrix(&mut seeded_rng(3), 10, 10, 0.25);
        assert!(m.as_slice().iter().all(|&x| (-0.25..0.25).contains(&x)));
    }

    #[test]
    fn kaiming_bound_formula() {
        assert!((kaiming_bound(4) - 0.5).abs() < 1e-12);
        assert_eq!(kaiming_bound(0), 0.0);
    }

    #[test]
    fn normal_mean_and_variance_are_plausible() {
        let mut rng = seeded_rng(11);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.08, "var {var}");
    }

    #[test]
    fn uniform_tensor_shape() {
        let t: Tensor<f32> = uniform_tensor(&mut seeded_rng(5), vec![2, 3, 4], 1.0);
        assert_eq!(t.shape(), &[2, 3, 4]);
    }
}
