//! Property-based tests for the dense linear-algebra substrate.
//!
//! These are the algebraic identities BPPSA's correctness argument rests on:
//! associativity of matrix multiplication (so the scan may re-associate the
//! Jacobian chain), transpose identities, and linearity.

use bppsa_tensor::{Matrix, Vector};
use proptest::prelude::*;

const DIM: std::ops::Range<usize> = 1..6;

fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix<f64>> {
    proptest::collection::vec(-10.0..10.0f64, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

fn vector(len: usize) -> impl Strategy<Value = Vector<f64>> {
    proptest::collection::vec(-10.0..10.0f64, len).prop_map(Vector::from_vec)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matmul_is_associative((a, b, c) in (DIM, DIM, DIM, DIM).prop_flat_map(|(m, k, n, p)| {
        (matrix(m, k), matrix(k, n), matrix(n, p))
    })) {
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        prop_assert!(left.approx_eq(&right, 1e-9),
            "associativity violated: diff {}", left.max_abs_diff(&right));
    }

    #[test]
    fn transpose_reverses_products((a, b) in (DIM, DIM, DIM).prop_flat_map(|(m, k, n)| {
        (matrix(m, k), matrix(k, n))
    })) {
        let lhs = a.matmul(&b).transposed();
        let rhs = b.transposed().matmul(&a.transposed());
        prop_assert!(lhs.approx_eq(&rhs, 1e-9));
    }

    #[test]
    fn matvec_agrees_with_matmul_on_column((a, x) in (DIM, DIM).prop_flat_map(|(m, n)| {
        (matrix(m, n), vector(n))
    })) {
        let via_vec = a.matvec(&x);
        let via_mat = a.matmul(&x.to_column_matrix());
        prop_assert_eq!(via_mat.shape(), (a.rows(), 1));
        for i in 0..via_vec.len() {
            prop_assert!((via_vec[i] - via_mat.get(i, 0)).abs() < 1e-9);
        }
    }

    #[test]
    fn matvec_transposed_matches_explicit_transpose((a, x) in (DIM, DIM).prop_flat_map(|(m, n)| {
        (matrix(m, n), vector(m))
    })) {
        let direct = a.matvec_transposed(&x);
        let explicit = a.transposed().matvec(&x);
        prop_assert!(direct.approx_eq(&explicit, 1e-9));
    }

    #[test]
    fn matmul_distributes_over_addition((a, b, c) in (DIM, DIM, DIM).prop_flat_map(|(m, k, n)| {
        (matrix(m, k), matrix(k, n), matrix(k, n))
    })) {
        let lhs = a.matmul(&b.add(&c));
        let rhs = a.matmul(&b).add(&a.matmul(&c));
        prop_assert!(lhs.approx_eq(&rhs, 1e-9));
    }

    #[test]
    fn identity_is_multiplicative_unit(a in DIM.prop_flat_map(|m| (matrix(m, m), Just(m)))) {
        let (a, m) = a;
        let i = Matrix::identity(m);
        prop_assert!(a.matmul(&i).approx_eq(&a, 0.0));
        prop_assert!(i.matmul(&a).approx_eq(&a, 0.0));
    }

    #[test]
    fn transpose_is_involution(a in (DIM, DIM).prop_flat_map(|(m, n)| matrix(m, n))) {
        prop_assert_eq!(a.transposed().transposed(), a);
    }

    #[test]
    fn outer_product_rank_one(x in DIM.prop_flat_map(vector), y in DIM.prop_flat_map(vector)) {
        let m = x.outer(&y);
        // Every 2x2 minor of a rank-1 matrix vanishes.
        for i in 0..m.rows() {
            for j in 0..m.cols() {
                for i2 in (i + 1)..m.rows() {
                    for j2 in (j + 1)..m.cols() {
                        let det = m.get(i, j) * m.get(i2, j2) - m.get(i, j2) * m.get(i2, j);
                        prop_assert!(det.abs() < 1e-8);
                    }
                }
            }
        }
    }

    #[test]
    fn dot_is_symmetric_and_bilinear((x, y, alpha) in DIM.prop_flat_map(|n| {
        (vector(n), vector(n), -3.0..3.0f64)
    })) {
        prop_assert!((x.dot(&y) - y.dot(&x)).abs() < 1e-9);
        prop_assert!((x.scaled(alpha).dot(&y) - alpha * x.dot(&y)).abs() < 1e-8);
    }

    #[test]
    fn sparsity_in_unit_interval(a in (DIM, DIM).prop_flat_map(|(m, n)| matrix(m, n))) {
        let s = a.sparsity();
        prop_assert!((0.0..=1.0).contains(&s));
        prop_assert_eq!(a.count_zeros() + a.count_nonzeros(), a.numel());
    }
}
