//! Global memory budget for workspace-backed execution.
//!
//! Per-lane [`WorkspacePool`](crate::WorkspacePool)s each bound their own
//! growth, but nothing bounded the *sum*: a storm of distinct chain shapes
//! creates a lane (and a pool) per shape, and wide chains make each pool
//! large — the process could allocate itself to death while every
//! individual pool stayed within its cap. [`MemoryBudget`] is the shared
//! ledger that closes that hole: every workspace a pool creates first
//! *reserves* its byte footprint here (computed from
//! [`PlannedScan::workspace_bytes`](crate::PlannedScan::workspace_bytes)),
//! and releases it when the pool drops. Reservation is a lock-free CAS on
//! an atomic counter; blocking waiters park on a condvar that releases
//! notify, so the hot path (checkout of an already-created workspace)
//! never touches the budget at all.
//!
//! The ledger tracks *reserved* bytes — the accounting model is
//! charge-before-allocate, so the high-water mark
//! ([`MemoryBudget::peak_reserved`]) is provably `<= limit` at all times,
//! which is exactly the invariant the serve-layer shape-storm tests pin.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// A shared byte-granular memory budget that workspace pools reserve
/// against before allocating.
///
/// Cheap to share (`Arc<MemoryBudget>`), cheap to check (one atomic CAS
/// per reservation, zero cost when not configured). Exhaustion never
/// fails an *existing* workload: pools that already own workspaces fall
/// back to blocking checkout (reusing what they have) instead of growing.
///
/// # Examples
///
/// ```
/// use bppsa_core::MemoryBudget;
///
/// let budget = MemoryBudget::new(1024);
/// assert!(budget.try_reserve(1000));
/// assert!(!budget.try_reserve(100)); // would exceed the limit
/// budget.release(1000);
/// assert!(budget.try_reserve(100));
/// assert_eq!(budget.peak_reserved(), 1000);
/// ```
#[derive(Debug)]
pub struct MemoryBudget {
    limit: usize,
    reserved: AtomicUsize,
    peak: AtomicUsize,
    /// Companion lock for `released`; holds no data — the atomics are the
    /// source of truth — but waiters must re-check `reserved` under it to
    /// avoid missing a release-side notify.
    gate: Mutex<()>,
    released: Condvar,
}

impl MemoryBudget {
    /// A budget allowing at most `limit_bytes` reserved at once.
    ///
    /// A limit of `0` refuses every non-zero reservation — useful in tests
    /// that must prove the refusal paths.
    pub fn new(limit_bytes: usize) -> Self {
        Self {
            limit: limit_bytes,
            reserved: AtomicUsize::new(0),
            peak: AtomicUsize::new(0),
            gate: Mutex::new(()),
            released: Condvar::new(),
        }
    }

    /// The configured limit in bytes.
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// Bytes currently reserved.
    pub fn reserved(&self) -> usize {
        self.reserved.load(Ordering::Acquire)
    }

    /// Bytes still available (`limit - reserved`).
    pub fn remaining(&self) -> usize {
        self.limit.saturating_sub(self.reserved())
    }

    /// High-water mark of [`reserved`](Self::reserved) over the budget's
    /// lifetime. Never exceeds [`limit`](Self::limit): reservation happens
    /// *before* allocation, so this pins the worst case a storm reached.
    pub fn peak_reserved(&self) -> usize {
        self.peak.load(Ordering::Acquire)
    }

    /// Whether the budget has no headroom left at this instant.
    pub fn exhausted(&self) -> bool {
        self.remaining() == 0
    }

    /// Attempts to reserve `bytes`; returns `false` (reserving nothing)
    /// when the reservation would push the total past the limit.
    pub fn try_reserve(&self, bytes: usize) -> bool {
        let mut current = self.reserved.load(Ordering::Relaxed);
        loop {
            let Some(next) = current.checked_add(bytes) else {
                return false;
            };
            if next > self.limit {
                return false;
            }
            match self.reserved.compare_exchange_weak(
                current,
                next,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.peak.fetch_max(next, Ordering::AcqRel);
                    return true;
                }
                Err(seen) => current = seen,
            }
        }
    }

    /// Blocks until `bytes` can be reserved or `timeout` elapses; returns
    /// whether the reservation was made. A `bytes` larger than the whole
    /// limit can never succeed and returns `false` immediately.
    pub fn reserve_timeout(&self, bytes: usize, timeout: Duration) -> bool {
        if bytes > self.limit {
            return false;
        }
        let deadline = std::time::Instant::now() + timeout;
        let mut guard = self.gate.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            // Check under the gate: a concurrent `release` takes the gate
            // before notifying, so a failed try here cannot park past it.
            if self.try_reserve(bytes) {
                return true;
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return false;
            }
            let (g, _) = self
                .released
                .wait_timeout(guard, deadline - now)
                .unwrap_or_else(|p| p.into_inner());
            guard = g;
        }
    }

    /// Returns `bytes` to the budget and wakes blocked reservers.
    ///
    /// Releasing more than is reserved saturates at zero (defensive: a
    /// double-release bug should starve no one).
    pub fn release(&self, bytes: usize) {
        let mut current = self.reserved.load(Ordering::Relaxed);
        loop {
            let next = current.saturating_sub(bytes);
            match self.reserved.compare_exchange_weak(
                current,
                next,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => current = seen,
            }
        }
        // Take the gate so a reserver that just failed its check cannot
        // park between our subtraction and this notify.
        drop(self.gate.lock().unwrap_or_else(|p| p.into_inner()));
        self.released.notify_all();
    }

    /// Waits up to `timeout` for *any* release, without reserving. Used by
    /// pools whose growth is budget-blocked and that own no workspace yet
    /// (so no checkin can ever wake them).
    pub fn wait_for_release(&self, timeout: Duration) {
        let guard = self.gate.lock().unwrap_or_else(|p| p.into_inner());
        let _ = self
            .released
            .wait_timeout(guard, timeout)
            .unwrap_or_else(|p| p.into_inner());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn reserve_respects_limit_and_tracks_peak() {
        let b = MemoryBudget::new(100);
        assert!(b.try_reserve(60));
        assert!(b.try_reserve(40));
        assert!(b.exhausted());
        assert!(!b.try_reserve(1));
        assert_eq!(b.reserved(), 100);
        b.release(40);
        assert_eq!(b.reserved(), 60);
        assert_eq!(b.remaining(), 40);
        // Peak remembers the high-water mark, not the current level.
        assert_eq!(b.peak_reserved(), 100);
        assert!(b.peak_reserved() <= b.limit());
    }

    #[test]
    fn zero_byte_reservations_always_succeed() {
        let b = MemoryBudget::new(0);
        assert!(b.try_reserve(0));
        assert!(!b.try_reserve(1));
    }

    #[test]
    fn release_saturates_at_zero() {
        let b = MemoryBudget::new(10);
        assert!(b.try_reserve(5));
        b.release(100);
        assert_eq!(b.reserved(), 0);
        assert!(b.try_reserve(10));
    }

    #[test]
    fn oversized_reservation_fails_fast() {
        let b = MemoryBudget::new(8);
        assert!(!b.reserve_timeout(9, Duration::from_secs(5)));
    }

    #[test]
    fn blocked_reserver_wakes_on_release() {
        let b = Arc::new(MemoryBudget::new(10));
        assert!(b.try_reserve(10));
        let waiter = {
            let b = Arc::clone(&b);
            std::thread::spawn(move || b.reserve_timeout(10, Duration::from_secs(10)))
        };
        std::thread::sleep(Duration::from_millis(20));
        b.release(10);
        assert!(waiter.join().expect("waiter panicked"));
        assert_eq!(b.reserved(), 10);
    }

    #[test]
    fn reserve_timeout_gives_up() {
        let b = MemoryBudget::new(4);
        assert!(b.try_reserve(4));
        let start = std::time::Instant::now();
        assert!(!b.reserve_timeout(1, Duration::from_millis(20)));
        assert!(start.elapsed() >= Duration::from_millis(20));
    }

    #[test]
    fn concurrent_reservers_never_exceed_limit() {
        let b = Arc::new(MemoryBudget::new(64));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let b = Arc::clone(&b);
                std::thread::spawn(move || {
                    let mut held = 0usize;
                    for _ in 0..200 {
                        if b.try_reserve(8) {
                            held += 8;
                            assert!(b.reserved() <= b.limit());
                            b.release(8);
                            held -= 8;
                        }
                    }
                    held
                })
            })
            .collect();
        for t in threads {
            assert_eq!(t.join().expect("reserver panicked"), 0);
        }
        assert_eq!(b.reserved(), 0);
        assert!(b.peak_reserved() <= b.limit());
    }
}
