//! Sequential networks: the model formulation of the paper's Equation 1
//! (`f = f₁ ∘ … ∘ f_n`), with both backward paths.
//!
//! [`Network::backward_bp`] is the baseline — classic reverse-mode VJPs, the
//! same math PyTorch Autograd + cuDNN run. [`Network::backward_bppsa`] is the
//! paper's method — build the transposed-Jacobian chain and scan it. §3.5's
//! claim is that the two are the *same function* up to floating-point
//! reassociation; the test suite and the Figure 7 experiment verify it.

use crate::backward::{bppsa_backward, BackwardResult, BppsaOptions};
use crate::chain::JacobianChain;
use crate::element::ScanElement;
use bppsa_ops::Operator;
use bppsa_tensor::{Scalar, Tensor, Vector};

/// How transposed Jacobians are represented in the scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JacobianRepr {
    /// CSR with the deterministic guaranteed-nonzero pattern (§3.3) — the
    /// paper's choice.
    #[default]
    Sparse,
    /// Dense matrices (only viable for small layers; used for validation).
    Dense,
}

/// A sequential feed-forward network.
///
/// # Examples
///
/// ```
/// use bppsa_core::Network;
/// use bppsa_ops::{Linear, Relu};
/// use bppsa_tensor::{init::seeded_rng, Tensor};
///
/// let mut rng = seeded_rng(0);
/// let mut net = Network::<f32>::new();
/// net.push(Box::new(Linear::new(4, 8, &mut rng)));
/// net.push(Box::new(Relu::new(vec![8])));
/// net.push(Box::new(Linear::new(8, 2, &mut rng)));
/// let tape = net.forward(&Tensor::zeros(vec![4]));
/// assert_eq!(tape.output().shape(), &[2]);
/// ```
pub struct Network<S> {
    ops: Vec<Box<dyn Operator<S>>>,
}

impl<S: Scalar> Default for Network<S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S: Scalar> Network<S> {
    /// Creates an empty network.
    pub fn new() -> Self {
        Self { ops: Vec::new() }
    }

    /// Appends an operator, validating shape chaining.
    ///
    /// # Panics
    ///
    /// Panics if the operator's input shape does not match the previous
    /// operator's output shape.
    pub fn push(&mut self, op: Box<dyn Operator<S>>) -> &mut Self {
        if let Some(prev) = self.ops.last() {
            assert_eq!(
                prev.output_shape(),
                op.input_shape(),
                "network: {} output {:?} does not feed {} input {:?}",
                prev.name(),
                prev.output_shape(),
                op.name(),
                op.input_shape()
            );
        }
        self.ops.push(op);
        self
    }

    /// The operators in layer order.
    pub fn ops(&self) -> &[Box<dyn Operator<S>>] {
        &self.ops
    }

    /// Mutable access to the operators (for optimizers and pruning).
    pub fn ops_mut(&mut self) -> &mut [Box<dyn Operator<S>>] {
        &mut self.ops
    }

    /// Number of layers `n`.
    pub fn num_layers(&self) -> usize {
        self.ops.len()
    }

    /// Total number of trainable parameters.
    pub fn num_params(&self) -> usize {
        self.ops.iter().map(|op| op.param_len()).sum()
    }

    /// Runs the forward pass, recording every activation `x₀ … x_n`.
    ///
    /// # Panics
    ///
    /// Panics if the input shape does not match the first operator's.
    pub fn forward(&self, input: &Tensor<S>) -> Tape<S> {
        let mut activations = Vec::with_capacity(self.ops.len() + 1);
        activations.push(input.clone());
        for op in &self.ops {
            let next = op.forward(activations.last().expect("nonempty"));
            activations.push(next);
        }
        Tape { activations }
    }

    /// Classic back-propagation (the baseline): reverse-order VJPs,
    /// interleaving Equation 3 (activation gradients) and Equation 2
    /// (parameter gradients).
    pub fn backward_bp(&self, tape: &Tape<S>, grad_output: &Vector<S>) -> Gradients<S> {
        tape.check_against(self);
        let n = self.ops.len();
        let mut activation_grads: Vec<Vector<S>> = vec![Vector::zeros(0); n];
        let mut param_grads: Vec<Vec<S>> = vec![Vec::new(); n];
        let mut g = grad_output.clone();
        for i in (0..n).rev() {
            let (x, y) = (&tape.activations[i], &tape.activations[i + 1]);
            activation_grads[i] = g.clone();
            param_grads[i] = self.ops[i].param_grad(x, y, &g);
            if i > 0 {
                g = self.ops[i].vjp(x, y, &g);
            }
        }
        Gradients {
            activation_grads,
            param_grads,
        }
    }

    /// Builds the Equation 5 chain from a recorded forward pass.
    pub fn build_chain(
        &self,
        tape: &Tape<S>,
        grad_output: &Vector<S>,
        repr: JacobianRepr,
    ) -> JacobianChain<S> {
        tape.check_against(self);
        let mut chain = JacobianChain::new(grad_output.clone());
        for (i, op) in self.ops.iter().enumerate() {
            let jt = op.transposed_jacobian(&tape.activations[i], &tape.activations[i + 1]);
            chain.push(match repr {
                JacobianRepr::Sparse => ScanElement::Sparse(jt),
                JacobianRepr::Dense => ScanElement::Dense(jt.to_dense()),
            });
        }
        chain.validate();
        chain
    }

    /// BPPSA: activation gradients via the modified Blelloch scan, then
    /// parameter gradients via Equation 2 (independent per layer).
    pub fn backward_bppsa(
        &self,
        tape: &Tape<S>,
        grad_output: &Vector<S>,
        repr: JacobianRepr,
        opts: BppsaOptions,
    ) -> Gradients<S> {
        let chain = self.build_chain(tape, grad_output, repr);
        let result: BackwardResult<S> = bppsa_backward(&chain, opts);
        self.gradients_from_activation_grads(tape, result.grads().to_vec())
    }

    /// Builds a [`crate::PlannedScan`] for this network's backward pass from
    /// one representative forward pass (the symbolic phase of §3.3, hoisted
    /// out of the training loop — see DESIGN.md §9). Valid for the life of
    /// the architecture: operators emit guaranteed-pattern Jacobians, so the
    /// plan holds across weight updates and inputs.
    pub fn plan_backward(&self, tape: &Tape<S>, opts: BppsaOptions) -> crate::PlannedScan {
        let probe = Vector::zeros(self.output_len());
        let chain = self.build_chain(tape, &probe, JacobianRepr::Sparse);
        crate::PlannedScan::plan(&chain, opts)
    }

    /// BPPSA through a precomputed [`crate::PlannedScan`]: numeric-only
    /// SpGEMM kernels end to end.
    ///
    /// # Panics
    ///
    /// Panics if the plan was built for a different architecture.
    pub fn backward_bppsa_planned(
        &self,
        tape: &Tape<S>,
        grad_output: &Vector<S>,
        plan: &crate::PlannedScan,
    ) -> Gradients<S> {
        let chain = self.build_chain(tape, grad_output, JacobianRepr::Sparse);
        let result = plan.execute(&chain);
        self.gradients_from_activation_grads(tape, result.grads().to_vec())
    }

    /// Flattened output length of the final operator.
    pub fn output_len(&self) -> usize {
        self.ops.last().map_or(0, |op| op.output_len())
    }

    /// Assembles [`Gradients`] from precomputed activation gradients by
    /// running Equation 2 for every layer (this loop is embarrassingly
    /// parallel — no dependency along `i`).
    pub fn gradients_from_activation_grads(
        &self,
        tape: &Tape<S>,
        activation_grads: Vec<Vector<S>>,
    ) -> Gradients<S> {
        assert_eq!(
            activation_grads.len(),
            self.ops.len(),
            "need one activation gradient per layer"
        );
        let param_grads = self
            .ops
            .iter()
            .enumerate()
            .map(|(i, op)| {
                op.param_grad(
                    &tape.activations[i],
                    &tape.activations[i + 1],
                    &activation_grads[i],
                )
            })
            .collect();
        Gradients {
            activation_grads,
            param_grads,
        }
    }
}

/// The recorded activations of one forward pass: `x₀ … x_n`.
#[derive(Debug, Clone)]
pub struct Tape<S> {
    activations: Vec<Tensor<S>>,
}

impl<S: Scalar> Tape<S> {
    /// All activations, input first.
    pub fn activations(&self) -> &[Tensor<S>] {
        &self.activations
    }

    /// The network output `x_n`.
    pub fn output(&self) -> &Tensor<S> {
        self.activations.last().expect("tape holds at least x0")
    }

    fn check_against(&self, net: &Network<S>) {
        assert_eq!(
            self.activations.len(),
            net.ops.len() + 1,
            "tape does not match network depth"
        );
    }
}

/// Gradients produced by a backward pass.
#[derive(Debug, Clone)]
pub struct Gradients<S> {
    /// `activation_grads[i] = ∇x_{i+1} l` (gradient at layer `i`'s output).
    pub activation_grads: Vec<Vector<S>>,
    /// `param_grads[i]` = flattened `∇θ_{i+1} l` (empty for stateless ops).
    pub param_grads: Vec<Vec<S>>,
}

impl<S: Scalar> Gradients<S> {
    /// Largest absolute difference across all activation and parameter
    /// gradients — the exactness metric between BP and BPPSA (§3.5).
    ///
    /// # Panics
    ///
    /// Panics if the structures differ.
    pub fn max_abs_diff(&self, other: &Self) -> S {
        assert_eq!(self.activation_grads.len(), other.activation_grads.len());
        assert_eq!(self.param_grads.len(), other.param_grads.len());
        let mut worst = S::ZERO;
        for (a, b) in self.activation_grads.iter().zip(&other.activation_grads) {
            worst = worst.maximum(a.max_abs_diff(b));
        }
        for (a, b) in self.param_grads.iter().zip(&other.param_grads) {
            assert_eq!(a.len(), b.len(), "parameter gradient length mismatch");
            for (&x, &y) in a.iter().zip(b) {
                worst = worst.maximum((x - y).abs());
            }
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bppsa_ops::{Conv2d, Conv2dConfig, Flatten, Linear, MaxPool2d, Relu, Tanh};
    use bppsa_tensor::init::{seeded_rng, uniform_tensor, uniform_vector};

    fn mlp(seed: u64) -> Network<f64> {
        let mut rng = seeded_rng(seed);
        let mut net = Network::new();
        net.push(Box::new(Linear::new(6, 10, &mut rng)));
        net.push(Box::new(Relu::new(vec![10])));
        net.push(Box::new(Linear::new(10, 8, &mut rng)));
        net.push(Box::new(Tanh::new(vec![8])));
        net.push(Box::new(Linear::new(8, 3, &mut rng)));
        net
    }

    fn tiny_cnn(seed: u64) -> Network<f64> {
        let mut rng = seeded_rng(seed);
        let mut net = Network::new();
        net.push(Box::new(Conv2d::new(
            Conv2dConfig::vgg_style(1, 4, (6, 6)),
            &mut rng,
        )));
        net.push(Box::new(Relu::new(vec![4, 6, 6])));
        net.push(Box::new(MaxPool2d::new(4, (2, 2), (2, 2), (6, 6))));
        net.push(Box::new(Flatten::new(vec![4, 3, 3])));
        net.push(Box::new(Linear::new(36, 5, &mut rng)));
        net
    }

    #[test]
    fn forward_tape_records_all_activations() {
        let net = mlp(1);
        let x = uniform_tensor(&mut seeded_rng(2), vec![6], 1.0);
        let tape = net.forward(&x);
        assert_eq!(tape.activations().len(), 6);
        assert_eq!(tape.output().shape(), &[3]);
    }

    #[test]
    fn bppsa_equals_bp_on_mlp_sparse_and_dense() {
        let net = mlp(3);
        let x = uniform_tensor(&mut seeded_rng(4), vec![6], 1.0);
        let tape = net.forward(&x);
        let g = uniform_vector(&mut seeded_rng(5), 3, 1.0);
        let bp = net.backward_bp(&tape, &g);
        for repr in [JacobianRepr::Sparse, JacobianRepr::Dense] {
            let scan = net.backward_bppsa(&tape, &g, repr, BppsaOptions::serial());
            let diff = bp.max_abs_diff(&scan);
            assert!(diff < 1e-10, "{repr:?}: diff {diff}");
        }
    }

    #[test]
    fn bppsa_equals_bp_on_cnn() {
        let net = tiny_cnn(7);
        let x = uniform_tensor(&mut seeded_rng(8), vec![1, 6, 6], 1.0);
        let tape = net.forward(&x);
        let g = uniform_vector(&mut seeded_rng(9), 5, 1.0);
        let bp = net.backward_bp(&tape, &g);
        let scan = net.backward_bppsa(&tape, &g, JacobianRepr::Sparse, BppsaOptions::serial());
        let diff = bp.max_abs_diff(&scan);
        assert!(diff < 1e-10, "diff {diff}");
    }

    #[test]
    fn threaded_and_hybrid_agree_on_cnn() {
        let net = tiny_cnn(11);
        let x = uniform_tensor(&mut seeded_rng(12), vec![1, 6, 6], 1.0);
        let tape = net.forward(&x);
        let g = uniform_vector(&mut seeded_rng(13), 5, 1.0);
        let reference = net.backward_bp(&tape, &g);
        for opts in [
            BppsaOptions::threaded(3),
            BppsaOptions::serial().hybrid(1),
            BppsaOptions::threaded(2).hybrid(2),
        ] {
            let scan = net.backward_bppsa(&tape, &g, JacobianRepr::Sparse, opts);
            assert!(reference.max_abs_diff(&scan) < 1e-10);
        }
    }

    #[test]
    fn planned_network_backward_matches_generic() {
        let net = tiny_cnn(31);
        let x = uniform_tensor(&mut seeded_rng(32), vec![1, 6, 6], 1.0);
        let tape = net.forward(&x);
        let plan = net.plan_backward(&tape, BppsaOptions::serial());
        // The plan survives a *different* input and seed (same patterns).
        let x2 = uniform_tensor(&mut seeded_rng(33), vec![1, 6, 6], 1.0);
        let tape2 = net.forward(&x2);
        let g = uniform_vector(&mut seeded_rng(34), 5, 1.0);
        let planned = net.backward_bppsa_planned(&tape2, &g, &plan);
        let generic = net.backward_bp(&tape2, &g);
        let diff = generic.max_abs_diff(&planned);
        assert!(diff < 1e-10, "diff {diff}");
    }

    #[test]
    fn param_grad_layout_matches_ops() {
        let net = mlp(20);
        let x = uniform_tensor(&mut seeded_rng(21), vec![6], 1.0);
        let tape = net.forward(&x);
        let g = uniform_vector(&mut seeded_rng(22), 3, 1.0);
        let grads = net.backward_bp(&tape, &g);
        for (op, pg) in net.ops().iter().zip(&grads.param_grads) {
            assert_eq!(op.param_len(), pg.len(), "{}", op.name());
        }
        assert_eq!(net.num_params(), 6 * 10 + 10 + 10 * 8 + 8 + 8 * 3 + 3);
    }

    #[test]
    #[should_panic(expected = "does not feed")]
    fn push_rejects_shape_mismatch() {
        let mut rng = seeded_rng(0);
        let mut net = Network::<f64>::new();
        net.push(Box::new(Linear::new(4, 8, &mut rng)));
        net.push(Box::new(Linear::new(9, 2, &mut rng)));
    }

    #[test]
    #[should_panic(expected = "tape does not match")]
    fn backward_rejects_foreign_tape() {
        let net = mlp(1);
        let other = Network::<f64>::new();
        let x = uniform_tensor(&mut seeded_rng(2), vec![6], 1.0);
        let tape = net.forward(&x);
        let _ = other.backward_bp(&tape, &Vector::zeros(3));
    }
}
