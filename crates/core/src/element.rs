//! Scan elements and the paper's binary operator `A ⊙ B = B·A`.
//!
//! §3.1 defines `⊙` as binary, associative, and **non-commutative**, with the
//! identity matrix as its identity value, "where A can be either a matrix or
//! a vector and B is a matrix". [`ScanElement`] realizes exactly those cases
//! (plus the symbolic identity, which is never materialized), and
//! [`JacobianScanOp`] implements `⊙` for the scan framework.
//!
//! Shape discipline (verified by construction and tests): in any exclusive
//! scan over the array of Equation 5, the left operand of `⊙` is either the
//! identity, the gradient-vector fold (a prefix that includes the seed), or a
//! matrix fold; the right operand is never a vector unless it is such a
//! prefix being distributed during the down-sweep against an identity.

use bppsa_scan::ScanOp;
use bppsa_sparse::{spgemm, Csr};
use bppsa_tensor::{Matrix, Scalar, Vector};
use std::fmt;

/// One element of the BPPSA scan array: the symbolic identity `I`, a gradient
/// vector, or a (transposed-Jacobian) matrix in dense or CSR representation.
#[derive(Debug, Clone, PartialEq)]
pub enum ScanElement<S> {
    /// The symbolic identity matrix (never materialized; Figure 4's green
    /// squares).
    Identity,
    /// A gradient vector — the seed `∇x_n l` or any fold that includes it.
    Vector(Vector<S>),
    /// A dense transposed Jacobian (or fold of several).
    Dense(Matrix<S>),
    /// A sparse transposed Jacobian (or fold of several) in CSR.
    Sparse(Csr<S>),
}

impl<S: Scalar> ScanElement<S> {
    /// Whether the element is the symbolic identity.
    pub fn is_identity(&self) -> bool {
        matches!(self, ScanElement::Identity)
    }

    /// Whether the element is a (gradient) vector.
    pub fn is_vector(&self) -> bool {
        matches!(self, ScanElement::Vector(_))
    }

    /// The `(rows, cols)` shape of a matrix element; vectors report
    /// `(len, 1)`; the identity reports `None` (it adapts to any shape).
    pub fn shape(&self) -> Option<(usize, usize)> {
        match self {
            ScanElement::Identity => None,
            ScanElement::Vector(v) => Some((v.len(), 1)),
            ScanElement::Dense(m) => Some(m.shape()),
            ScanElement::Sparse(m) => Some(m.shape()),
        }
    }

    /// Extracts the gradient vector, if this element is one.
    pub fn as_vector(&self) -> Option<&Vector<S>> {
        match self {
            ScanElement::Vector(v) => Some(v),
            _ => None,
        }
    }

    /// Approximate memory footprint in bytes of the element's payload
    /// (used by the space-complexity accounting, §3.6).
    pub fn memory_bytes(&self) -> usize {
        match self {
            ScanElement::Identity => 0,
            ScanElement::Vector(v) => v.len() * std::mem::size_of::<S>(),
            ScanElement::Dense(m) => m.numel() * std::mem::size_of::<S>(),
            ScanElement::Sparse(m) => m.memory_bytes(),
        }
    }

    /// Number of FLOPs `a ⊙ self` would cost with `a` as the left operand —
    /// the per-step cost `P` of §3.6 (2 FLOPs per multiply–add; identity
    /// short-circuits are free).
    pub fn combine_flops(left: &Self, right: &Self) -> u64 {
        use ScanElement::*;
        match (left, right) {
            (Identity, _) | (_, Identity) => 0,
            (Vector(v), Dense(m)) => {
                debug_assert_eq!(m.cols(), v.len());
                2 * (m.rows() as u64) * (m.cols() as u64)
            }
            (Vector(v), Sparse(m)) => {
                debug_assert_eq!(m.cols(), v.len());
                bppsa_sparse::flops::spmv_flops(m)
            }
            (Dense(a), Dense(b)) => 2 * (b.rows() as u64) * (b.cols() as u64) * (a.cols() as u64),
            (Sparse(a), Sparse(b)) => bppsa_sparse::flops::spgemm_flops(b, a),
            // Mixed dense/sparse folds: costed as if densified (rare path).
            (Dense(a), Sparse(b)) => 2 * (b.rows() as u64) * (b.cols() as u64) * (a.cols() as u64),
            (Sparse(a), Dense(b)) => 2 * (b.rows() as u64) * (b.cols() as u64) * (a.cols() as u64),
            (Vector(_), Vector(_)) | (Dense(_), Vector(_)) | (Sparse(_), Vector(_)) => {
                panic!("combine_flops: invalid operand pair (matrix ⊙ vector)")
            }
        }
    }
}

impl<S: Scalar> fmt::Display for ScanElement<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScanElement::Identity => write!(f, "I"),
            ScanElement::Vector(v) => write!(f, "vec[{}]", v.len()),
            ScanElement::Dense(m) => write!(f, "dense[{}x{}]", m.rows(), m.cols()),
            ScanElement::Sparse(m) => {
                write!(f, "csr[{}x{}, nnz={}]", m.rows(), m.cols(), m.nnz())
            }
        }
    }
}

/// The paper's `⊙` operator: `combine(a, b) = a ⊙ b = b · a`.
///
/// # Examples
///
/// ```
/// use bppsa_core::{JacobianScanOp, ScanElement};
/// use bppsa_scan::ScanOp;
/// use bppsa_tensor::{Matrix, Vector};
///
/// let op = JacobianScanOp::default();
/// let v = ScanElement::Vector(Vector::from_vec(vec![1.0_f64, 2.0]));
/// let jt = ScanElement::Dense(Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0]]));
/// // v ⊙ Jᵀ = Jᵀ·v — one step of Equation 3.
/// match op.combine(&v, &jt) {
///     ScanElement::Vector(g) => assert_eq!(g.as_slice(), &[1.0, 3.0]),
///     other => panic!("expected vector, got {other}"),
/// }
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct JacobianScanOp;

impl<S: Scalar> ScanOp<ScanElement<S>> for JacobianScanOp {
    fn combine(&self, a: &ScanElement<S>, b: &ScanElement<S>) -> ScanElement<S> {
        use ScanElement::*;
        match (a, b) {
            (Identity, x) | (x, Identity) => x.clone(),
            // a ⊙ b = b·a: gradient-vector folds.
            (Vector(v), Dense(m)) => Vector(m.matvec(v)),
            (Vector(v), Sparse(m)) => Vector(m.spmv(v)),
            // Matrix folds: b·a in the matching representation.
            (Dense(ma), Dense(mb)) => Dense(mb.matmul(ma)),
            (Sparse(ma), Sparse(mb)) => Sparse(spgemm(mb, ma)),
            // Mixed representations: densify the sparse operand (correct but
            // slow; chains should be homogeneous).
            (Dense(ma), Sparse(mb)) => Dense(mb.to_dense().matmul(ma)),
            (Sparse(ma), Dense(mb)) => Dense(mb.matmul(&ma.to_dense())),
            (Vector(_), Vector(_)) | (Dense(_), Vector(_)) | (Sparse(_), Vector(_)) => panic!(
                "JacobianScanOp: invalid operand pair ({a} ⊙ {b}); \
                 a vector may only appear as the left operand"
            ),
        }
    }

    fn identity(&self) -> ScanElement<S> {
        ScanElement::Identity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bppsa_scan::ScanOp;

    fn jt_a() -> Matrix<f64> {
        Matrix::from_rows(&[&[1.0, 2.0], &[0.5, -1.0]])
    }

    fn jt_b() -> Matrix<f64> {
        Matrix::from_rows(&[&[2.0, 0.0], &[1.0, 1.0]])
    }

    #[test]
    fn identity_short_circuits() {
        let op = JacobianScanOp;
        let v = ScanElement::Vector(Vector::from_vec(vec![1.0f64, 2.0]));
        assert_eq!(op.combine(&op.identity(), &v), v);
        assert_eq!(op.combine(&v, &op.identity()), v);
        assert_eq!(
            ScanElement::<f64>::combine_flops(&ScanElement::Identity, &v),
            0
        );
    }

    #[test]
    fn vector_matrix_is_matvec() {
        let op = JacobianScanOp;
        let v = ScanElement::Vector(Vector::from_vec(vec![1.0f64, 1.0]));
        let m = ScanElement::Dense(jt_a());
        let out = op.combine(&v, &m);
        assert_eq!(out.as_vector().unwrap().as_slice(), &[3.0, -0.5]);
    }

    #[test]
    fn matrix_matrix_is_reversed_matmul() {
        let op = JacobianScanOp;
        let a = ScanElement::Dense(jt_a());
        let b = ScanElement::Dense(jt_b());
        // a ⊙ b = b·a.
        match op.combine(&a, &b) {
            ScanElement::Dense(m) => assert!(m.approx_eq(&jt_b().matmul(&jt_a()), 1e-12)),
            other => panic!("expected dense, got {other}"),
        }
    }

    #[test]
    fn sparse_matches_dense_combine() {
        let op = JacobianScanOp;
        let (da, db) = (jt_a(), jt_b());
        let sa = ScanElement::Sparse(Csr::from_dense(&da));
        let sb = ScanElement::Sparse(Csr::from_dense(&db));
        let dense_out = match op.combine(&ScanElement::Dense(da), &ScanElement::Dense(db)) {
            ScanElement::Dense(m) => m,
            _ => unreachable!(),
        };
        match op.combine(&sa, &sb) {
            ScanElement::Sparse(m) => assert!(m.to_dense().approx_eq(&dense_out, 1e-12)),
            other => panic!("expected sparse, got {other}"),
        }
    }

    #[test]
    fn mixed_representations_densify() {
        let op = JacobianScanOp;
        let a = ScanElement::Dense(jt_a());
        let b = ScanElement::Sparse(Csr::from_dense(&jt_b()));
        match op.combine(&a, &b) {
            ScanElement::Dense(m) => assert!(m.approx_eq(&jt_b().matmul(&jt_a()), 1e-12)),
            other => panic!("expected dense, got {other}"),
        }
    }

    #[test]
    #[should_panic(expected = "invalid operand pair")]
    fn matrix_then_vector_is_rejected() {
        let op = JacobianScanOp;
        let m = ScanElement::Dense(jt_a());
        let v = ScanElement::Vector(Vector::from_vec(vec![1.0f64, 1.0]));
        let _ = op.combine(&m, &v);
    }

    #[test]
    fn associativity_over_mixed_folds() {
        // (v ⊙ A) ⊙ B == v ⊙ (A ⊙ B): the algebraic core of BPPSA.
        let op = JacobianScanOp;
        let v = ScanElement::Vector(Vector::from_vec(vec![0.5f64, -2.0]));
        let a = ScanElement::Dense(jt_a());
        let b = ScanElement::Dense(jt_b());
        let left = op.combine(&op.combine(&v, &a), &b);
        let right = op.combine(&v, &op.combine(&a, &b));
        let (l, r) = (left.as_vector().unwrap(), right.as_vector().unwrap());
        assert!(l.approx_eq(r, 1e-12));
    }

    #[test]
    fn combine_flops_for_each_kind() {
        let v = ScanElement::Vector(Vector::<f64>::zeros(2));
        let d = ScanElement::Dense(jt_a());
        let s = ScanElement::Sparse(Csr::from_dense(&jt_a()));
        // GEMV: 2·2·2 = 8.
        assert_eq!(ScanElement::combine_flops(&v, &d), 8);
        // SpMV: 2·nnz = 8 (all four entries nonzero).
        assert_eq!(ScanElement::combine_flops(&v, &s), 8);
        // GEMM: 2·2·2·2 = 16.
        assert_eq!(ScanElement::combine_flops(&d, &d), 16);
        // SpGEMM on fully dense patterns equals GEMM.
        assert_eq!(ScanElement::combine_flops(&s, &s), 16);
    }

    #[test]
    fn memory_bytes_reflects_payload() {
        let v = ScanElement::Vector(Vector::<f32>::zeros(8));
        assert_eq!(v.memory_bytes(), 32);
        assert_eq!(ScanElement::<f32>::Identity.memory_bytes(), 0);
    }

    #[test]
    fn display_forms() {
        assert_eq!(format!("{}", ScanElement::<f32>::Identity), "I");
        let v = ScanElement::Vector(Vector::<f32>::zeros(3));
        assert_eq!(format!("{v}"), "vec[3]");
    }
}
