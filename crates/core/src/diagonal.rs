//! Diagonal-Jacobian elementwise scan fast path.
//!
//! The linear recurrence `h_t = a_t ⊙ h_{t−1} + b_t` — the whole
//! SSM/linear-attention/GRU-diagonal family — produces transposed Jacobians
//! that are *diagonal*. For such chains every scan combine `A ⊙ B = B·A`
//! collapses to an elementwise multiply: diagonal × diagonal stays diagonal,
//! and diagonal × vector is a lane-wise product. Paying CSR SpGEMM machinery
//! (symbolic products, gather programs, indptr walks) for that is pure
//! overhead, so [`PlannedScan`](crate::PlannedScan) detects the shape at plan
//! time and compiles the *same schedule* into a dense elementwise program
//! instead.
//!
//! # The program
//!
//! The plan replays the [`ScanSchedule`] once, symbolically, over a dense
//! `(n + 2) × width` value plane: row `s ∈ 0..=n` is scan slot `s` (row 0
//! the seed, row `s` the diagonal of `Jᵀ_{n+1−s}`), row `n + 1` is the
//! scratch row holding the middle phase's running prefix. Identity slots are
//! resolved at plan time, so the runtime program is a straight-line stream
//! of three row-local instructions:
//!
//! * `Copy { src, dst }` — move a value into an identity slot;
//! * `MulInto { src, dst }` — up-sweep combine, `dst[k] *= src[k]`;
//! * `SwapMul { l, r }` — the down-sweep's reversed-operand exchange
//!   (`t ← l; l ← r; r ← r·t`), also used for the middle running fold.
//!
//! Because a diagonal combine performs exactly **one** multiplication per
//! lane (no accumulation), replaying the identical schedule makes the linear
//! kernel **bit-for-bit equal** to the generic CSR planned path — IEEE
//! multiplication is commutative, and the operand tree per output lane is
//! the same. The differential suite in `tests/diagonal_differential.rs` pins
//! this with `max_abs_diff == 0.0`.
//!
//! # Log-space kernel
//!
//! At sequence lengths in the 10⁵–10⁶ range, coefficient products drift out
//! of the representable range even when every *output* is representable: a
//! Blelloch block partial spans a contiguous coefficient range, and its
//! magnitude is `exp(Lₚ − L_q)` for suffix-log-sums `L` — up to *twice* the
//! largest output exponent. [`DiagonalKernel::LogSpace`] runs the same
//! instruction stream over `(log|v|, sign)` planes (multiplication becomes
//! addition; zeros are `(−∞, 0)`), materializing `sign · exp(log)` only at
//! the output boundary, so intermediate partials cannot overflow. The
//! selection heuristic is value-independent:
//! [`DiagonalMode::Auto`] picks log-space iff
//! `n ≥ `[`DIAGONAL_LOG_SPACE_MIN_LEN`]. `tests/diagonal_stability.rs` pins
//! both the failure of the linear kernel and the accuracy of the log-space
//! kernel at `n = 2¹⁷`.

use bppsa_scan::{global_pool, Pair, ScanSchedule, SendPtr};
use bppsa_sparse::SparsityPattern;
use bppsa_tensor::Scalar;
use std::sync::Arc;

/// Minimum chain length at which [`DiagonalMode::Auto`] switches the
/// diagonal fast path from the linear kernel to the log-space kernel.
///
/// Below this, products of well-scaled coefficients stay comfortably in
/// range and the linear kernel's bit-for-bit agreement with the generic
/// path is worth keeping; above it, a single Blelloch block partial spans
/// enough coefficients that `exp`-range excursions become plausible (the
/// stability suite demonstrates them at `n = 2¹⁷`).
pub const DIAGONAL_LOG_SPACE_MIN_LEN: usize = 32_768;

/// Minimum chain width before a diagonal level fans out to the worker pool.
///
/// Diagonal combines touch `width` contiguous scalars per instruction; for
/// narrow chains (the degenerate `width = 1` case in particular) neighboring
/// rows share cache lines and fan-out costs more in pool wakeup + false
/// sharing than the elementwise work saves, *regardless* of how many
/// instructions the level has. FLOP-based thresholds sized for gather
/// programs get this wrong — a `width = 1 × 10⁶` chain passes them — so the
/// diagonal kernel gates on width first. See [`diagonal_level_tasks`].
pub const DIAGONAL_PARALLEL_MIN_WIDTH: usize = 8;

/// Minimum elementwise multiplies in a level before it is worth a pool
/// wakeup at all.
const DIAGONAL_STAGE_PARALLEL_MIN_FLOPS: u64 = 32_768;

/// Minimum elementwise multiplies per fanned-out task.
const DIAGONAL_TASK_MIN_FLOPS: u64 = 8_192;

/// How a [`PlannedScan`](crate::PlannedScan) treats all-diagonal chains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DiagonalMode {
    /// Use the diagonal fast path when the chain is all-diagonal, selecting
    /// the kernel by the [`DIAGONAL_LOG_SPACE_MIN_LEN`] stability heuristic.
    #[default]
    Auto,
    /// Force the linear (direct-product) kernel on all-diagonal chains.
    Linear,
    /// Force the log-space kernel on all-diagonal chains.
    LogSpace,
    /// Never use the diagonal fast path; plan the generic CSR program even
    /// for all-diagonal chains (the differential suite's reference).
    Disabled,
}

/// Which numeric kernel a planned diagonal program runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DiagonalKernel {
    /// Direct elementwise products — bit-for-bit with the generic CSR path.
    Linear,
    /// `(log|v|, sign)` planes; products become sums, `sign·exp(log)` is
    /// materialized only at the output boundary.
    LogSpace,
}

impl DiagonalMode {
    /// Selects the kernel for a chain of `n` layers whose seed is
    /// `width`-long with the given per-layer patterns, or `None` when the
    /// chain is not all-diagonal (or the mode is [`DiagonalMode::Disabled`],
    /// or the chain is empty). A forced [`DiagonalMode::Linear`] /
    /// [`DiagonalMode::LogSpace`] on a non-diagonal chain falls back to the
    /// generic program — the mode forces a *kernel choice*, not a shape.
    pub(crate) fn select(
        self,
        n: usize,
        width: usize,
        patterns: &[Arc<SparsityPattern>],
    ) -> Option<DiagonalKernel> {
        if self == DiagonalMode::Disabled || n == 0 {
            return None;
        }
        let all_diagonal = patterns
            .iter()
            .all(|p| p.rows() == width && p.is_diagonal());
        if !all_diagonal {
            return None;
        }
        Some(match self {
            DiagonalMode::Auto => {
                if n >= DIAGONAL_LOG_SPACE_MIN_LEN {
                    DiagonalKernel::LogSpace
                } else {
                    DiagonalKernel::Linear
                }
            }
            DiagonalMode::Linear => DiagonalKernel::Linear,
            DiagonalMode::LogSpace => DiagonalKernel::LogSpace,
            DiagonalMode::Disabled => unreachable!("handled above"),
        })
    }
}

/// Number of pool tasks a diagonal level of `instrs` instructions over
/// `width`-wide rows should fan out to, given `workers` pool workers.
///
/// Returns `1` (run inline, no pool wakeup) unless the width clears
/// [`DIAGONAL_PARALLEL_MIN_WIDTH`] *and* the level's total elementwise work
/// clears a wakeup threshold; otherwise splits so every task carries a
/// meaningful slice. This is the single fan-out policy of the diagonal
/// executor — the width-1 regression test and the executor share it, so the
/// tested rule is the executed rule.
pub fn diagonal_level_tasks(width: usize, instrs: usize, workers: usize) -> usize {
    if width < DIAGONAL_PARALLEL_MIN_WIDTH || instrs < 2 || workers < 2 {
        return 1;
    }
    let flops = width as u64 * instrs as u64;
    if flops < DIAGONAL_STAGE_PARALLEL_MIN_FLOPS {
        return 1;
    }
    let max_tasks = usize::try_from(flops / DIAGONAL_TASK_MIN_FLOPS).unwrap_or(usize::MAX);
    workers.min(instrs).min(max_tasks.max(1))
}

/// One row-local instruction of the compiled diagonal program. Row indices
/// are `u32` (a `10⁶`-layer plan stays ~24 MB of instructions).
#[derive(Debug, Clone, Copy)]
enum DiagInstr {
    /// `row[dst] ← row[src]` (an identity slot receiving a value).
    Copy { src: u32, dst: u32 },
    /// `row[dst][k] *= row[src][k]` — the up-sweep combine.
    MulInto { src: u32, dst: u32 },
    /// `t ← row[l]; row[l] ← row[r]; row[r] ← row[r] · t` lane-wise — the
    /// down-sweep's reversed-operand exchange and the middle running fold.
    SwapMul { l: u32, r: u32 },
}

/// One barrier group of the diagonal program (a scan level, or the serial
/// middle phase).
#[derive(Debug, Clone)]
struct DiagStage {
    instrs: Vec<DiagInstr>,
    parallel: bool,
}

/// The compiled diagonal elementwise program for one chain shape: the
/// schedule replayed over dense `(n + 2) × width` planes with identities
/// resolved at plan time. Built and executed by
/// [`PlannedScan`](crate::PlannedScan) when
/// [`DiagonalMode`] detection proves every layer diagonal.
#[derive(Debug, Clone)]
pub(crate) struct DiagonalScanPlan {
    n: usize,
    width: usize,
    kernel: DiagonalKernel,
    stages: Vec<DiagStage>,
}

/// Pre-sized dense planes for one diagonal execution: `vals` holds the
/// value plane (linear kernel) or the log-magnitude plane (log-space);
/// `signs` is populated only for log-space. `(n + 2) × width` each.
#[derive(Debug)]
pub(crate) struct DiagonalWorkspace<S> {
    vals: Vec<S>,
    signs: Vec<S>,
}

impl DiagonalScanPlan {
    /// Replays `schedule` symbolically (each slot either Identity or a
    /// value at its own row), emitting the in-place instruction stream.
    ///
    /// # Panics
    ///
    /// Panics if the replay does not end in the exclusive-scan postcondition
    /// (identity at slot 0, a value in every other slot) — that would mean
    /// the schedule is not an exclusive scan.
    pub(crate) fn compile(
        n: usize,
        width: usize,
        kernel: DiagonalKernel,
        schedule: &ScanSchedule,
    ) -> Self {
        assert!(n >= 1, "diagonal plan requires at least one layer");
        assert_eq!(schedule.len(), n + 1, "schedule length mismatch");
        let scratch = u32::try_from(n + 1).expect("diagonal plan: chain too long for u32 rows");

        // has_value[s]: whether slot s currently holds a value (at row s)
        // rather than the identity. Everything starts loaded.
        let mut has_value = vec![true; n + 1];
        let mut stages: Vec<DiagStage> = Vec::new();
        let mut push = |stage: DiagStage| {
            if !stage.instrs.is_empty() {
                stages.push(stage);
            }
        };

        // Up-sweep: a[r] ← a[l] ⊙ a[r] (numerically r·l, lane-wise).
        for level in schedule.up_levels() {
            let mut instrs = Vec::new();
            for &Pair { l, r } in level {
                match (has_value[l], has_value[r]) {
                    (false, _) => {} // identity left operand: a[r] unchanged
                    (true, false) => {
                        instrs.push(DiagInstr::Copy {
                            src: l as u32,
                            dst: r as u32,
                        });
                        has_value[r] = true;
                    }
                    (true, true) => instrs.push(DiagInstr::MulInto {
                        src: l as u32,
                        dst: r as u32,
                    }),
                }
            }
            push(DiagStage {
                instrs,
                parallel: true,
            });
        }

        // Middle: serial exclusive scan over the block roots; the running
        // prefix lives in the scratch row.
        {
            let mut instrs = Vec::new();
            let mut running = false; // running prefix starts as the identity
            for &root in schedule.block_roots() {
                match (running, has_value[root]) {
                    (false, false) => {}
                    (false, true) => {
                        // slot[root] ← identity; running ← old slot value.
                        instrs.push(DiagInstr::Copy {
                            src: root as u32,
                            dst: scratch,
                        });
                        has_value[root] = false;
                        running = true;
                    }
                    (true, false) => {
                        // slot[root] ← running; running unchanged.
                        instrs.push(DiagInstr::Copy {
                            src: scratch,
                            dst: root as u32,
                        });
                        has_value[root] = true;
                    }
                    (true, true) => {
                        // slot[root] ← running; running ← running · old.
                        instrs.push(DiagInstr::SwapMul {
                            l: root as u32,
                            r: scratch,
                        });
                    }
                }
            }
            push(DiagStage {
                instrs,
                parallel: false,
            });
        }

        // Down-sweep: t ← a[l]; a[l] ← a[r]; a[r] ← a[r] ⊙ t (r·t lane-wise).
        for level in schedule.down_levels() {
            let mut instrs = Vec::new();
            for &Pair { l, r } in level {
                match (has_value[l], has_value[r]) {
                    (false, false) => {}
                    (false, true) => {
                        // l gets r's value; r ⊙ identity keeps r's value.
                        instrs.push(DiagInstr::Copy {
                            src: r as u32,
                            dst: l as u32,
                        });
                        has_value[l] = true;
                    }
                    (true, false) => {
                        // l becomes identity; r gets l's old value.
                        instrs.push(DiagInstr::Copy {
                            src: l as u32,
                            dst: r as u32,
                        });
                        has_value[l] = false;
                        has_value[r] = true;
                    }
                    (true, true) => instrs.push(DiagInstr::SwapMul {
                        l: l as u32,
                        r: r as u32,
                    }),
                }
            }
            push(DiagStage {
                instrs,
                parallel: true,
            });
        }

        assert!(
            !has_value[0] && has_value[1..].iter().all(|&v| v),
            "diagonal plan: schedule replay is not an exclusive scan"
        );

        Self {
            n,
            width,
            kernel,
            stages,
        }
    }

    /// The numeric kernel this program runs.
    pub(crate) fn kernel(&self) -> DiagonalKernel {
        self.kernel
    }

    /// Total elementwise multiplies per execution (`Copy` is free).
    pub(crate) fn flops(&self) -> u64 {
        let muls: u64 = self
            .stages
            .iter()
            .flat_map(|s| &s.instrs)
            .filter(|i| !matches!(i, DiagInstr::Copy { .. }))
            .count() as u64;
        muls * self.width as u64
    }

    /// Bytes of dense plane payload one workspace holds.
    pub(crate) fn workspace_bytes<S: Scalar>(&self) -> usize {
        let planes = match self.kernel {
            DiagonalKernel::Linear => 1,
            DiagonalKernel::LogSpace => 2,
        };
        planes * (self.n + 2) * self.width * std::mem::size_of::<S>()
    }

    /// Allocates the (fully pre-sized) planes for one execution.
    pub(crate) fn workspace<S: Scalar>(&self) -> DiagonalWorkspace<S> {
        let plane = (self.n + 2) * self.width;
        DiagonalWorkspace {
            vals: vec![S::ZERO; plane],
            signs: match self.kernel {
                DiagonalKernel::Linear => Vec::new(),
                DiagonalKernel::LogSpace => vec![S::ZERO; plane],
            },
        }
    }

    /// Largest pool fan-out any stage of this plan would request from a
    /// `workers`-wide pool — the plan-level view of
    /// [`diagonal_level_tasks`], which the width-1 regression test asserts
    /// stays `1` for degenerate widths no matter the chain length.
    pub(crate) fn max_level_tasks(&self, workers: usize) -> usize {
        self.stages
            .iter()
            .filter(|s| s.parallel)
            .map(|s| diagonal_level_tasks(self.width, s.instrs.len(), workers))
            .max()
            .unwrap_or(1)
    }

    /// Runs the compiled program: load rows from `seed` + per-layer
    /// diagonals, execute the stages, materialize the outputs into
    /// `grads[i]` (= slot row `n − i`). `diag_of(p)` must yield the diagonal
    /// value slice of `jacobians()[p]`.
    ///
    /// Zero heap allocations in the steady state: the planes and `grads`
    /// are pre-sized, and instructions are row-local.
    pub(crate) fn execute<'a, S: Scalar>(
        &self,
        seed: &[S],
        diag_of: impl Fn(usize) -> &'a [S],
        ws: &mut DiagonalWorkspace<S>,
        parallel: bool,
        grads: &mut [bppsa_tensor::Vector<S>],
    ) {
        let w = self.width;
        let n = self.n;
        debug_assert_eq!(seed.len(), w);
        debug_assert_eq!(grads.len(), n);

        // Load the planes. Row s holds scan slot s: row 0 the seed, row s
        // the diagonal of Jᵀ_{n+1−s} = jacobians()[n − s].
        match self.kernel {
            DiagonalKernel::Linear => {
                ws.vals[..w].copy_from_slice(seed);
                for s in 1..=n {
                    ws.vals[s * w..(s + 1) * w].copy_from_slice(diag_of(n - s));
                }
            }
            DiagonalKernel::LogSpace => {
                load_log_row(&mut ws.vals[..w], &mut ws.signs[..w], seed);
                for s in 1..=n {
                    let (lo, hi) = (s * w, (s + 1) * w);
                    load_log_row(&mut ws.vals[lo..hi], &mut ws.signs[lo..hi], diag_of(n - s));
                }
            }
        }

        self.run_stages(ws, parallel);

        // Outputs: g[i] = slot n − i.
        for (i, g) in grads.iter_mut().enumerate() {
            let row = (n - i) * w;
            let out = g.as_mut_slice();
            match self.kernel {
                DiagonalKernel::Linear => out.copy_from_slice(&ws.vals[row..row + w]),
                DiagonalKernel::LogSpace => {
                    for (k, o) in out.iter_mut().enumerate() {
                        *o = ws.signs[row + k] * ws.vals[row + k].exp();
                    }
                }
            }
        }
    }

    /// Executes every stage, fanning a level across the pool only when
    /// [`diagonal_level_tasks`] says the width and volume justify it.
    fn run_stages<S: Scalar>(&self, ws: &mut DiagonalWorkspace<S>, parallel: bool) {
        let w = self.width;
        let kernel = self.kernel;
        let vals = SendPtr(ws.vals.as_mut_ptr());
        let signs = SendPtr(if ws.signs.is_empty() {
            std::ptr::null_mut()
        } else {
            ws.signs.as_mut_ptr()
        });
        for stage in &self.stages {
            let tasks = if parallel && stage.parallel {
                diagonal_level_tasks(w, stage.instrs.len(), global_pool().size())
            } else {
                1
            };
            if tasks > 1 {
                let per = stage.instrs.len().div_ceil(tasks);
                global_pool().run_indexed(tasks, &|t| {
                    // Rebind the whole SendPtrs so the closure captures
                    // them (not their raw-pointer fields, which are !Sync).
                    let (vals, signs): (SendPtr<S>, SendPtr<S>) = (vals, signs);
                    let lo = t * per;
                    let hi = ((t + 1) * per).min(stage.instrs.len());
                    for instr in &stage.instrs[lo..hi] {
                        // SAFETY: pairs within one level are disjoint
                        // (`assert_levels_disjoint`), each instruction
                        // touches only its own two rows, and the pool
                        // barrier orders levels; `signs` is non-null
                        // whenever the kernel reads it.
                        unsafe { run_instr(kernel, *instr, vals.0, signs.0, w) };
                    }
                });
            } else {
                for instr in &stage.instrs {
                    // SAFETY: single-threaded here; row-local as above.
                    unsafe { run_instr(kernel, *instr, vals.0, signs.0, w) };
                }
            }
        }
    }
}

/// Loads one row of the log-space planes: `logs = ln|v|` (`−∞` for zero)
/// and `signs ∈ {1, 0, −1}`.
fn load_log_row<S: Scalar>(logs: &mut [S], signs: &mut [S], values: &[S]) {
    for ((lg, sg), &v) in logs.iter_mut().zip(signs.iter_mut()).zip(values) {
        *lg = v.abs().ln();
        *sg = if v == S::ZERO {
            S::ZERO
        } else if v < S::ZERO {
            -S::ONE
        } else {
            S::ONE
        };
    }
}

/// Executes one instruction over the planes.
///
/// # Safety
///
/// `vals` (and `signs`, for the log-space kernel) must point to planes with
/// at least `(max_row + 1) * width` elements, and no other thread may touch
/// the instruction's two rows concurrently.
unsafe fn run_instr<S: Scalar>(
    kernel: DiagonalKernel,
    instr: DiagInstr,
    vals: *mut S,
    signs: *mut S,
    width: usize,
) {
    let row = |base: *mut S, r: u32| base.add(r as usize * width);
    match (kernel, instr) {
        (DiagonalKernel::Linear, DiagInstr::Copy { src, dst }) => {
            std::ptr::copy_nonoverlapping(row(vals, src), row(vals, dst), width);
        }
        // The `+ S::ZERO` on every linear product is load-bearing for the
        // bit-for-bit contract: the generic CSR program evaluates each lane
        // as a one-term SpMV/SpGEMM row, i.e. `acc = 0; acc += a·b`, and
        // that leading `+0.0` canonicalizes a `-0.0` product to `+0.0`
        // (round-to-nearest: `+0 + -0 = +0`). A bare multiply would keep
        // the negative zero and differ by one sign bit.
        (DiagonalKernel::Linear, DiagInstr::MulInto { src, dst }) => {
            let (s, d) = (row(vals, src), row(vals, dst));
            for k in 0..width {
                *d.add(k) = *d.add(k) * *s.add(k) + S::ZERO;
            }
        }
        (DiagonalKernel::Linear, DiagInstr::SwapMul { l, r }) => {
            let (lp, rp) = (row(vals, l), row(vals, r));
            for k in 0..width {
                let t = *lp.add(k);
                *lp.add(k) = *rp.add(k);
                *rp.add(k) = *rp.add(k) * t + S::ZERO;
            }
        }
        (DiagonalKernel::LogSpace, DiagInstr::Copy { src, dst }) => {
            std::ptr::copy_nonoverlapping(row(vals, src), row(vals, dst), width);
            std::ptr::copy_nonoverlapping(row(signs, src), row(signs, dst), width);
        }
        (DiagonalKernel::LogSpace, DiagInstr::MulInto { src, dst }) => {
            let (s, d) = (row(vals, src), row(vals, dst));
            for k in 0..width {
                *d.add(k) = *d.add(k) + *s.add(k);
            }
            let (s, d) = (row(signs, src), row(signs, dst));
            for k in 0..width {
                *d.add(k) = *d.add(k) * *s.add(k);
            }
        }
        (DiagonalKernel::LogSpace, DiagInstr::SwapMul { l, r }) => {
            let (lp, rp) = (row(vals, l), row(vals, r));
            for k in 0..width {
                let t = *lp.add(k);
                *lp.add(k) = *rp.add(k);
                *rp.add(k) = *rp.add(k) + t;
            }
            let (lp, rp) = (row(signs, l), row(signs, r));
            for k in 0..width {
                let t = *lp.add(k);
                *lp.add(k) = *rp.add(k);
                *rp.add(k) = *rp.add(k) * t;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_tasks_gate_on_width_first() {
        // Width 1: never fans out, no matter how many instructions.
        assert_eq!(diagonal_level_tasks(1, 1_000_000, 16), 1);
        assert_eq!(diagonal_level_tasks(7, 1_000_000, 16), 1);
        // Wide enough + heavy enough: splits, bounded by workers.
        assert_eq!(diagonal_level_tasks(64, 100_000, 8), 8);
        // Wide but tiny volume: stays inline.
        assert_eq!(diagonal_level_tasks(64, 4, 8), 1);
        // Task-size floor bounds the split for middling volumes.
        let t = diagonal_level_tasks(8, 8_192, 64);
        assert!((2..=8).contains(&t), "middling volume split {t}");
        // Degenerate pools run inline.
        assert_eq!(diagonal_level_tasks(256, 100_000, 1), 1);
    }

    #[test]
    fn mode_selection_honors_heuristic_and_overrides() {
        use std::sync::Arc;
        let diag = |w: usize| {
            Arc::new(SparsityPattern::new(
                w,
                w,
                (0..=w).collect(),
                (0..w as u32).collect(),
            ))
        };
        let pats: Vec<_> = (0..3).map(|_| diag(4)).collect();
        assert_eq!(
            DiagonalMode::Auto.select(3, 4, &pats),
            Some(DiagonalKernel::Linear)
        );
        assert_eq!(
            DiagonalMode::LogSpace.select(3, 4, &pats),
            Some(DiagonalKernel::LogSpace)
        );
        assert_eq!(DiagonalMode::Disabled.select(3, 4, &pats), None);
        // Auto flips to log-space at the stability threshold (the pattern
        // list is what matters; lengths are taken from `n`).
        assert_eq!(
            DiagonalMode::Auto.select(DIAGONAL_LOG_SPACE_MIN_LEN, 4, &pats),
            Some(DiagonalKernel::LogSpace)
        );
        // Width mismatch or non-diagonal pattern: no fast path.
        assert_eq!(DiagonalMode::Auto.select(3, 5, &pats), None);
        let dense = Arc::new(SparsityPattern::new(2, 2, vec![0, 2, 4], vec![0, 1, 0, 1]));
        assert_eq!(DiagonalMode::Linear.select(1, 2, &[dense]), None);
        // Empty chains never take the fast path.
        assert_eq!(DiagonalMode::Auto.select(0, 4, &[]), None);
    }
}
