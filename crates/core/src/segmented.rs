//! Plan-time chain segmentation — the scale-out story beyond one pool.
//!
//! BPPSA parallelizes *within* one chain: every scan level fans out across
//! one worker pool. Segmentation cuts the chain itself into `K` contiguous
//! runs of schedule blocks that scan **concurrently** on separate worker
//! groups (LBI's bounded-width interfaces, Huo et al.'s decoupled backprop —
//! see PAPERS.md), stitched through the schedule's serial middle phase.
//!
//! # Exactness
//!
//! The split is *not* an approximation. In
//! [`ScanSchedule::with_up_levels`](bppsa_scan::ScanSchedule::with_up_levels),
//! every up-sweep and down-sweep pair lies entirely within one `2^k` block
//! (pinned by `pairs_never_cross_block_boundaries` in `bppsa-scan`): all
//! cross-block dataflow happens in the serial middle scan over block roots.
//! A segment is a contiguous run of blocks, so partitioning the compiled
//! program's **instruction stream** at block boundaries — never recompiling
//! sub-chains — and running the per-segment up-sweep slices concurrently,
//! then the middle serially, then the per-segment down-sweep slices
//! concurrently, executes the *same instruction multiset over the same
//! single-assignment buffers in a dataflow-equivalent order*. The result is
//! bit-for-bit identical to the unsegmented execution of the same schedule
//! (proptest-pinned in `tests/segmented_differential.rs`).
//!
//! # Partitioning
//!
//! [`balanced_cuts`] places the `K − 1` cuts by planned per-block FLOPs
//! (balance) while preferring naturally narrow interfaces: within a window
//! around each ideal cut, the block boundary with the smallest interface
//! width (the row count flowing across the cut) wins, with load imbalance
//! as the tie-break. A narrow interface means the segments' root folds stay
//! small — exactly LBI's bounded-width-interface observation.

use std::ops::Range;

/// One contiguous run of a compiled stage's instructions belonging to a
/// single segment: `instrs[lo..hi]` of `stages[stage]`. Within a stage,
/// instructions ascend by written scan position, so a segment's share of
/// any stage is a contiguous slice.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SegmentSlice {
    pub(crate) stage: usize,
    pub(crate) lo: usize,
    pub(crate) hi: usize,
}

/// The segmentation of one [`PlannedScan`](crate::PlannedScan): which
/// schedule blocks each segment owns, the per-segment instruction slices of
/// every up/down stage, and the interface widths at the chosen cuts.
///
/// Built at plan time by [`PlannedScan::plan`](crate::PlannedScan::plan)
/// when [`BppsaOptions::segmented`](crate::BppsaOptions::segmented)
/// requests more than one segment (and the schedule has enough blocks);
/// exposed read-only via
/// [`PlannedScan::segmentation`](crate::PlannedScan::segmentation).
#[derive(Debug, Clone)]
pub struct SegmentedPlan {
    /// Per segment, the up-sweep instruction slices in stage order.
    pub(crate) up: Vec<Vec<SegmentSlice>>,
    /// Per segment, the down-sweep instruction slices in stage order.
    pub(crate) down: Vec<Vec<SegmentSlice>>,
    /// Index of the serial middle stage in the compiled stage list, if the
    /// middle emitted any instructions.
    pub(crate) middle: Option<usize>,
    /// Which schedule blocks each segment owns (contiguous, disjoint,
    /// covering all blocks).
    segment_blocks: Vec<Range<usize>>,
    /// Row count flowing across each of the `K − 1` cuts.
    interface_widths: Vec<usize>,
}

impl SegmentedPlan {
    pub(crate) fn new(
        up: Vec<Vec<SegmentSlice>>,
        down: Vec<Vec<SegmentSlice>>,
        middle: Option<usize>,
        segment_blocks: Vec<Range<usize>>,
        interface_widths: Vec<usize>,
    ) -> Self {
        debug_assert_eq!(up.len(), segment_blocks.len());
        debug_assert_eq!(down.len(), segment_blocks.len());
        debug_assert_eq!(interface_widths.len() + 1, segment_blocks.len());
        Self {
            up,
            down,
            middle,
            segment_blocks,
            interface_widths,
        }
    }

    /// Number of concurrently-scanned segments (≥ 2 by construction — a
    /// one-segment "segmentation" is just the unsegmented plan).
    pub fn segments(&self) -> usize {
        self.segment_blocks.len()
    }

    /// The contiguous schedule-block range each segment owns.
    pub fn segment_blocks(&self) -> &[Range<usize>] {
        &self.segment_blocks
    }

    /// Row count flowing across each cut (`segments() − 1` entries): the
    /// width of the fold the left segment hands the serial middle at that
    /// boundary. The partition heuristic prefers cuts where this is small.
    pub fn interface_widths(&self) -> &[usize] {
        &self.interface_widths
    }
}

/// Places `k − 1` strictly-increasing cut positions over `weights.len()`
/// blocks, balancing cumulative weight while preferring narrow interfaces.
///
/// `weights[b]` is the planned cost of block `b`; `interfaces[b]` is the
/// width of the boundary between blocks `b` and `b + 1` (so
/// `interfaces.len() == weights.len() − 1`). A returned cut `c` means a
/// segment boundary *before* block `c`. Within a window of
/// `max(1, B / (4k))` blocks around each ideal (weight-balanced) cut, the
/// narrowest interface wins; ties fall to the smaller weight imbalance.
///
/// # Panics
///
/// Panics if `k < 2`, `k > weights.len()`, or the slice lengths disagree.
pub fn balanced_cuts(weights: &[u64], interfaces: &[usize], k: usize) -> Vec<usize> {
    let b = weights.len();
    assert!(k >= 2, "balanced_cuts: need at least 2 segments, got {k}");
    assert!(k <= b, "balanced_cuts: {k} segments over {b} blocks");
    assert_eq!(
        interfaces.len(),
        b - 1,
        "balanced_cuts: need one interface width per block boundary"
    );

    // prefix[i] = total weight of blocks 0..i.
    let mut prefix = Vec::with_capacity(b + 1);
    let mut acc = 0u64;
    prefix.push(0u64);
    for &w in weights {
        acc += w;
        prefix.push(acc);
    }
    let total = acc;

    let window = (b / (4 * k)).max(1);
    let mut cuts = Vec::with_capacity(k - 1);
    let mut prev = 0usize; // last chosen cut (0 = chain start)
    for j in 1..k {
        // Ideal cut: cumulative weight j/k of the total. `partition_point`
        // finds the first prefix ≥ target; candidates around it compete.
        let target = total / k as u64 * j as u64 + (total % k as u64) * j as u64 / k as u64;
        let ideal = prefix.partition_point(|&p| p < target).clamp(1, b - 1);
        // Every remaining segment needs at least one block.
        let lo = ideal.saturating_sub(window).max(prev + 1);
        let hi = (ideal + window).min(b - (k - j));
        let (lo, hi) = if lo > hi {
            // The window collapsed (tight tail); fall back to the single
            // feasible position closest to ideal.
            let c = ideal.clamp(prev + 1, b - (k - j));
            (c, c)
        } else {
            (lo, hi)
        };
        let best = (lo..=hi)
            .min_by_key(|&c| {
                let imbalance = prefix[c].abs_diff(target);
                (interfaces[c - 1], imbalance)
            })
            .expect("balanced_cuts: candidate window is non-empty");
        cuts.push(best);
        prev = best;
    }
    cuts
}

/// Expands `cuts` (as returned by [`balanced_cuts`]) over `num_blocks`
/// blocks into per-segment block ranges.
pub fn segments_from_cuts(cuts: &[usize], num_blocks: usize) -> Vec<Range<usize>> {
    let mut ranges = Vec::with_capacity(cuts.len() + 1);
    let mut start = 0usize;
    for &c in cuts {
        ranges.push(start..c);
        start = c;
    }
    ranges.push(start..num_blocks);
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_weights_cut_evenly() {
        let weights = vec![10u64; 16];
        let interfaces = vec![4usize; 15];
        let cuts = balanced_cuts(&weights, &interfaces, 4);
        assert_eq!(cuts, vec![4, 8, 12]);
        let segs = segments_from_cuts(&cuts, 16);
        assert_eq!(segs, vec![0..4, 4..8, 8..12, 12..16]);
    }

    #[test]
    fn narrow_interface_near_ideal_cut_wins() {
        // 16 uniform blocks, window = 16/(4·2) = 2 around the ideal cut at
        // 8; the width-1 bottleneck at boundary 6→7 (interfaces[6]) is
        // inside the window and must win over perfect balance.
        let weights = vec![10u64; 16];
        let mut interfaces = vec![8usize; 15];
        interfaces[6] = 1; // boundary before block 7
        let cuts = balanced_cuts(&weights, &interfaces, 2);
        assert_eq!(cuts, vec![7]);
    }

    #[test]
    fn skewed_weights_shift_cuts() {
        // All weight up front: the balance target pulls the cut left.
        let mut weights = vec![1u64; 12];
        for w in weights.iter_mut().take(3) {
            *w = 100;
        }
        let interfaces = vec![4usize; 11];
        let cuts = balanced_cuts(&weights, &interfaces, 2);
        assert!(cuts[0] <= 3, "cut {cuts:?} should land in the heavy head");
    }

    #[test]
    fn every_segment_gets_at_least_one_block() {
        // k close to B with all weight in one block: cuts must still be
        // strictly increasing and feasible.
        let mut weights = vec![0u64; 5];
        weights[0] = 1000;
        let interfaces = vec![3usize; 4];
        let cuts = balanced_cuts(&weights, &interfaces, 5);
        assert_eq!(cuts, vec![1, 2, 3, 4]);
        let segs = segments_from_cuts(&cuts, 5);
        assert!(segs.iter().all(|r| !r.is_empty()));
    }

    #[test]
    fn cuts_are_strictly_increasing_and_cover() {
        for b in 2..40usize {
            for k in 2..=b.min(8) {
                let weights: Vec<u64> = (0..b).map(|i| 1 + (i as u64 * 7) % 13).collect();
                let interfaces: Vec<usize> = (0..b - 1).map(|i| 1 + (i * 3) % 5).collect();
                let cuts = balanced_cuts(&weights, &interfaces, k);
                assert_eq!(cuts.len(), k - 1, "b={b} k={k}");
                for w in cuts.windows(2) {
                    assert!(w[0] < w[1], "b={b} k={k}: cuts {cuts:?}");
                }
                assert!(*cuts.first().unwrap() >= 1);
                assert!(*cuts.last().unwrap() < b);
                let segs = segments_from_cuts(&cuts, b);
                assert_eq!(segs.len(), k);
                assert!(segs.iter().all(|r| !r.is_empty()), "b={b} k={k}: {segs:?}");
                assert_eq!(segs.first().unwrap().start, 0);
                assert_eq!(segs.last().unwrap().end, b);
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least 2 segments")]
    fn one_segment_is_rejected() {
        let _ = balanced_cuts(&[1, 2], &[1], 1);
    }

    #[test]
    #[should_panic(expected = "segments over")]
    fn more_segments_than_blocks_is_rejected() {
        let _ = balanced_cuts(&[1, 2], &[1], 3);
    }
}
