//! # bppsa-core — back-propagation as a parallel scan
//!
//! The primary contribution of *"BPPSA: Scaling Back-propagation by Parallel
//! Scan Algorithm"* (Wang, Bai & Pekhimenko, MLSys 2020), reproduced in full:
//!
//! 1. **Reformulation (§3.1).** The gradient recurrence
//!    `∇x_i ← (∂x_{i+1}/∂x_i)ᵀ ∇x_{i+1}` (Equation 3) is an *exclusive scan*
//!    of the non-commutative operator `A ⊙ B = B·A` over the array
//!    `[∇x_n, J_nᵀ, …, J₁ᵀ]` (Equation 5). Types: [`ScanElement`],
//!    [`JacobianScanOp`], [`JacobianChain`].
//! 2. **Scaling (§3.2).** The scan runs under the modified Blelloch schedule
//!    (Algorithm 1, reversed operands in the down-sweep) in `Θ(log n)` steps:
//!    [`bppsa_backward`], with the `Θ(n)`-step [`linear_backward`] baseline.
//! 3. **Sparsity (§3.3–3.4).** Jacobians enter the scan in CSR with
//!    deterministic patterns (via `bppsa-ops`); the §5.2 hybrid schedule
//!    ([`BppsaOptions::hybrid`]) balances tree levels against densifying
//!    products.
//! 4. **Integration.** [`Network`] ties operators into the Equation 1
//!    composition with both backward paths, and [`flops`] reproduces the
//!    Figure 11 static analysis.
//! 5. **Steady state & scale-out.** [`PlannedScan`] compiles the whole
//!    backward pass into a numeric-only program (§3.3 hoisted over the
//!    training run); one reused [`ScanWorkspace`] makes an iteration
//!    allocation-free, and [`WorkspacePool`] / [`BatchedBackward`] fan many
//!    mini-batches of the same compiled plan across the worker pool
//!    concurrently — the serving-shard layer (see `ARCHITECTURE.md`).
//!
//! ## Quickstart
//!
//! ```
//! use bppsa_core::{BppsaOptions, JacobianRepr, Network};
//! use bppsa_ops::{Linear, Relu};
//! use bppsa_tensor::{init::seeded_rng, Tensor, Vector};
//!
//! let mut rng = seeded_rng(0);
//! let mut net = Network::<f64>::new();
//! net.push(Box::new(Linear::new(4, 16, &mut rng)));
//! net.push(Box::new(Relu::new(vec![16])));
//! net.push(Box::new(Linear::new(16, 3, &mut rng)));
//!
//! let tape = net.forward(&Tensor::from_vec(vec![4], vec![0.1, -0.2, 0.3, 0.4]));
//! let seed = Vector::from_vec(vec![1.0, 0.0, -1.0]); // ∇x_n from the loss
//!
//! let bp = net.backward_bp(&tape, &seed);
//! let scan = net.backward_bppsa(&tape, &seed, JacobianRepr::Sparse, BppsaOptions::threaded(4));
//! // §3.5: BPPSA reconstructs BP exactly (up to fp reassociation).
//! assert!(bp.max_abs_diff(&scan) < 1e-10);
//! ```

#![warn(missing_docs)]

mod backward;
mod budget;
mod chain;
mod diagonal;
mod element;
mod network;
mod planned;
mod pool;
mod segmented;

pub mod flops;

pub use backward::{bppsa_backward, linear_backward, BackwardResult, BppsaOptions};
pub use budget::MemoryBudget;
pub use chain::{gradients_from_scan_output, JacobianChain};
pub use diagonal::{
    diagonal_level_tasks, DiagonalKernel, DiagonalMode, DIAGONAL_LOG_SPACE_MIN_LEN,
    DIAGONAL_PARALLEL_MIN_WIDTH,
};
pub use element::{JacobianScanOp, ScanElement};
pub use network::{Gradients, JacobianRepr, Network, Tape};
pub use planned::{
    chain_matches_shape, KernelCounts, Mru, PlanKind, PlannedBackwardCache, PlannedScan,
    ScanWorkspace, PLAN_CACHE_CAPACITY,
};
// The numeric-kernel selection surface travels with `BppsaOptions::kernel`,
// so consumers of the planned API don't need a direct `bppsa-sparse` dep.
pub use bppsa_sparse::{KernelMode, NumericKernel};
pub use pool::{BatchedBackward, PooledWorkspace, WorkspacePool};
pub use segmented::{balanced_cuts, segments_from_cuts, SegmentedPlan};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<ScanElement<f32>>();
        assert_send::<JacobianChain<f32>>();
        assert_send::<BackwardResult<f32>>();
        assert_send::<Gradients<f32>>();
    }
}
