//! The two ways to consume a Jacobian chain: the paper's BPPSA (modified
//! Blelloch scan, §3.2) and the "linear scan" baseline (§3.6), which emulates
//! ordinary back-propagation by applying the transposed Jacobians to the
//! gradient vector one at a time.

use crate::chain::{gradients_from_scan_output, JacobianChain};
use crate::diagonal::DiagonalMode;
use crate::element::{JacobianScanOp, ScanElement};
use bppsa_scan::{ceil_log2, execute_in_place, Executor, ScanSchedule};
use bppsa_sparse::KernelMode;
use bppsa_tensor::{Scalar, Vector};

/// Options for a BPPSA backward pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BppsaOptions {
    /// How parallel levels are executed.
    pub executor: Executor,
    /// Number of up-sweep levels; `None` = full Blelloch (Algorithm 1),
    /// `Some(k)` = the §5.2 hybrid with `k` tree levels.
    pub up_levels: Option<usize>,
    /// How [`PlannedScan`](crate::PlannedScan) treats all-diagonal chains
    /// (the SSM/linear-recurrence family). The default
    /// [`DiagonalMode::Auto`] takes the elementwise fast path whenever the
    /// chain's patterns prove every layer diagonal; the unplanned
    /// [`bppsa_backward`] ignores this field.
    pub diagonal: DiagonalMode,
    /// How [`PlannedScan`](crate::PlannedScan) picks the numeric SpGEMM
    /// kernel of each planned matrix–matrix combine (see
    /// [`KernelMode`]). The default [`KernelMode::Auto`] selects per combine
    /// from the operands' pattern statistics; the forcing modes pin one
    /// kernel for differential testing and ablation. The unplanned
    /// [`bppsa_backward`] ignores this field.
    pub kernel: KernelMode,
    /// How many chain segments [`PlannedScan`](crate::PlannedScan) scans
    /// concurrently (`1` = unsegmented). Segmentation partitions the
    /// schedule's blocks into contiguous runs executed on separate worker
    /// groups and stitches them through the serial middle phase — an exact,
    /// associativity-preserving split that is bit-for-bit identical to the
    /// unsegmented execution of the same schedule. The unplanned
    /// [`bppsa_backward`] ignores this field.
    pub segments: usize,
}

impl Default for BppsaOptions {
    fn default() -> Self {
        Self {
            executor: Executor::Serial,
            up_levels: None,
            diagonal: DiagonalMode::Auto,
            kernel: KernelMode::Auto,
            segments: 1,
        }
    }
}

impl BppsaOptions {
    /// Full Blelloch, executed serially.
    pub fn serial() -> Self {
        Self::default()
    }

    /// Full Blelloch with `threads` worker threads per level.
    pub fn threaded(threads: usize) -> Self {
        Self {
            executor: Executor::Threaded(threads),
            ..Self::default()
        }
    }

    /// Full Blelloch on the shared persistent worker pool — the fastest CPU
    /// executor for repeated scans (no per-level thread spawns).
    pub fn pooled() -> Self {
        Self {
            executor: Executor::Pooled,
            ..Self::default()
        }
    }

    /// The §5.2 hybrid with `k` up-sweep levels.
    pub fn hybrid(mut self, k: usize) -> Self {
        self.up_levels = Some(k);
        self
    }

    /// Sets how planned execution treats all-diagonal chains (see
    /// [`DiagonalMode`]).
    pub fn diagonal(mut self, mode: DiagonalMode) -> Self {
        self.diagonal = mode;
        self
    }

    /// Sets how planned execution picks each combine's numeric SpGEMM
    /// kernel (see [`KernelMode`]).
    pub fn kernel(mut self, mode: KernelMode) -> Self {
        self.kernel = mode;
        self
    }

    /// Requests `k` concurrently-scanned chain segments from planned
    /// execution (`k ≤ 1` means unsegmented; the plan clamps `k` to the
    /// schedule's block count).
    pub fn segmented(mut self, k: usize) -> Self {
        self.segments = k.max(1);
        self
    }

    /// The schedule these options induce for a scan of length `len`.
    ///
    /// Segmentation requires multiple schedule blocks (the full Blelloch
    /// schedule has exactly one, its single root), so when `segments > 1`
    /// and no explicit hybrid depth was set, the depth is derived to yield
    /// at least ~4 blocks per requested segment — giving the partition
    /// heuristic room to prefer narrow interfaces. The derivation is part
    /// of the options, not the plan: the bit-for-bit unsegmented reference
    /// for `opts.segmented(k)` is `opts.segmented(1).hybrid(d)` with the
    /// same derived depth `d` (see [`BppsaOptions::segmented_up_levels`]).
    pub fn schedule(&self, len: usize) -> ScanSchedule {
        match self.up_levels {
            None if self.segments > 1 => {
                ScanSchedule::with_up_levels(len, self.segmented_up_levels(len))
            }
            None => ScanSchedule::full(len),
            Some(k) => ScanSchedule::with_up_levels(len, k),
        }
    }

    /// The hybrid depth [`BppsaOptions::schedule`] derives when
    /// `segments > 1` and `up_levels` is `None`: the deepest `k` whose
    /// `2^k`-sized blocks still leave at least `4 × segments` of them, so
    /// segment cuts can chase naturally narrow interfaces instead of being
    /// forced onto block boundaries.
    pub fn segmented_up_levels(&self, len: usize) -> usize {
        let n = len.saturating_sub(1).max(1);
        let target_blocks = 4 * self.segments.max(1);
        if n <= target_blocks {
            0
        } else {
            // Largest k with n / 2^k ≥ target_blocks.
            ceil_log2(n / target_blocks + 1).saturating_sub(1) as usize
        }
    }
}

/// Result of a backward pass over a chain: activation gradients indexed by
/// layer (`grads()[i] = ∇x_{i+1} l`).
#[derive(Debug, Clone)]
pub struct BackwardResult<S> {
    grads: Vec<Vector<S>>,
}

impl<S: Scalar> BackwardResult<S> {
    /// Assembles a result from layer-ordered gradients
    /// (`grads[i] = ∇x_{i+1} l`) — for executors that unpack a scan array
    /// themselves, and for result buffers refreshed in place (the planned
    /// workspaces, `bppsa-serve`'s reusable tickets).
    pub fn from_grads(grads: Vec<Vector<S>>) -> Self {
        Self { grads }
    }

    /// Gradients with respect to each layer output:
    /// `grads()[i] = ∇x_{i+1} l` for `i ∈ 0..n`.
    pub fn grads(&self) -> &[Vector<S>] {
        &self.grads
    }

    /// Mutable access for executors and result sinks that refresh an owned
    /// result in place instead of allocating a new one (the planned
    /// workspace steady state, `bppsa-serve`'s ticket buffers).
    pub fn grads_mut(&mut self) -> &mut [Vector<S>] {
        &mut self.grads
    }

    /// The gradient flowing *into* layer `i` (1-indexed as in the paper),
    /// i.e. `∇x_i l` — what layer `i`'s parameter gradient (Equation 2)
    /// consumes is `grads_into(i+1)`… more precisely `∇x_i` for `i ≥ 1`.
    ///
    /// # Panics
    ///
    /// Panics if `i == 0` or `i > n` (the scan never produces `∇x_0`).
    pub fn grad_x(&self, i: usize) -> &Vector<S> {
        assert!(
            i >= 1 && i <= self.grads.len(),
            "grad_x: i must be in 1..=n (got {i}, n={})",
            self.grads.len()
        );
        &self.grads[i - 1]
    }

    /// Largest absolute elementwise difference against another result — the
    /// exactness metric of §3.5.
    ///
    /// # Panics
    ///
    /// Panics if the two results have different structure.
    pub fn max_abs_diff(&self, other: &Self) -> S {
        assert_eq!(
            self.grads.len(),
            other.grads.len(),
            "max_abs_diff: results have different layer counts"
        );
        self.grads
            .iter()
            .zip(&other.grads)
            .fold(S::ZERO, |acc, (a, b)| acc.maximum(a.max_abs_diff(b)))
    }
}

/// Runs BPPSA: lays the chain out as the Equation 5 array, executes the
/// (possibly hybrid) modified Blelloch scan, and unpacks `[I, ∇x_n, …, ∇x_1]`.
///
/// # Panics
///
/// Panics if the chain is structurally invalid.
///
/// # Examples
///
/// ```
/// use bppsa_core::{bppsa_backward, linear_backward, BppsaOptions, JacobianChain, ScanElement};
/// use bppsa_tensor::{Matrix, Vector};
///
/// let mut chain = JacobianChain::new(Vector::from_vec(vec![1.0_f64, -1.0]));
/// chain.push(ScanElement::Dense(Matrix::from_rows(&[&[0.5, 0.0], &[0.0, 2.0]])));
/// let scan = bppsa_backward(&chain, BppsaOptions::serial());
/// let lin = linear_backward(&chain);
/// assert!(scan.max_abs_diff(&lin) < 1e-12);
/// ```
pub fn bppsa_backward<S: Scalar>(
    chain: &JacobianChain<S>,
    opts: BppsaOptions,
) -> BackwardResult<S> {
    chain.validate();
    let mut array = chain.to_scan_array();
    let schedule = opts.schedule(array.len());
    execute_in_place(&schedule, &JacobianScanOp, &mut array, opts.executor);
    BackwardResult {
        grads: gradients_from_scan_output(&array),
    }
}

/// The linear-scan baseline: sequential `∇x_i ← J_{i+1}ᵀ · ∇x_{i+1}`
/// (Equation 3 with explicit Jacobians), `Θ(n)` steps — same step count as
/// classic BP.
///
/// # Panics
///
/// Panics if the chain is structurally invalid.
pub fn linear_backward<S: Scalar>(chain: &JacobianChain<S>) -> BackwardResult<S> {
    chain.validate();
    let n = chain.num_layers();
    let mut grads: Vec<Vector<S>> = Vec::with_capacity(n);
    let mut current = chain.seed().clone();
    // grads in layer order get filled from the back: g[n−1] = ∇x_n = seed.
    let mut rev: Vec<Vector<S>> = Vec::with_capacity(n);
    for jt in chain.jacobians().iter().rev() {
        rev.push(current.clone());
        current = match jt {
            ScanElement::Dense(m) => m.matvec(&current),
            ScanElement::Sparse(m) => m.spmv(&current),
            other => panic!("linear_backward: unexpected element {other}"),
        };
    }
    // `rev` holds [∇x_n, ∇x_{n−1}, …, ∇x_1]; reverse into layer order.
    // (`current` now holds ∇x_0, which BP never needs.)
    for g in rev.into_iter().rev() {
        grads.push(g);
    }
    BackwardResult { grads }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bppsa_sparse::Csr;
    use bppsa_tensor::init::{seeded_rng, uniform_matrix, uniform_vector};
    use bppsa_tensor::Matrix;

    /// A random dense chain with varying layer widths.
    fn random_chain(n: usize, seed: u64) -> JacobianChain<f64> {
        let mut rng = seeded_rng(seed);
        let dims: Vec<usize> = (0..=n).map(|i| 2 + (i * 3 + seed as usize) % 5).collect();
        let mut chain = JacobianChain::new(uniform_vector(&mut rng, dims[n], 1.0));
        for i in 0..n {
            chain.push(ScanElement::Dense(uniform_matrix(
                &mut rng,
                dims[i],
                dims[i + 1],
                1.0,
            )));
        }
        chain
    }

    fn to_sparse(chain: &JacobianChain<f64>) -> JacobianChain<f64> {
        let mut out = JacobianChain::new(chain.seed().clone());
        for jt in chain.jacobians() {
            match jt {
                ScanElement::Dense(m) => out.push(ScanElement::Sparse(Csr::from_dense(m))),
                other => out.push(other.clone()),
            }
        }
        out
    }

    #[test]
    fn blelloch_equals_linear_for_various_lengths() {
        for n in [1usize, 2, 3, 4, 7, 8, 15, 16, 33] {
            let chain = random_chain(n, n as u64);
            let scan = bppsa_backward(&chain, BppsaOptions::serial());
            let lin = linear_backward(&chain);
            let diff = scan.max_abs_diff(&lin);
            assert!(diff < 1e-9, "n={n}: diff {diff}");
        }
    }

    #[test]
    fn threaded_equals_serial() {
        let chain = random_chain(21, 5);
        let serial = bppsa_backward(&chain, BppsaOptions::serial());
        let threaded = bppsa_backward(&chain, BppsaOptions::threaded(4));
        assert!(serial.max_abs_diff(&threaded) < 1e-12);
    }

    #[test]
    fn hybrid_cutoffs_all_agree() {
        let chain = random_chain(13, 9);
        let reference = linear_backward(&chain);
        for k in 0..6 {
            let hybrid = bppsa_backward(&chain, BppsaOptions::serial().hybrid(k));
            let diff = hybrid.max_abs_diff(&reference);
            assert!(diff < 1e-9, "k={k}: diff {diff}");
        }
    }

    #[test]
    fn sparse_chain_equals_dense_chain() {
        let dense = random_chain(9, 3);
        let sparse = to_sparse(&dense);
        let gd = bppsa_backward(&dense, BppsaOptions::serial());
        let gs = bppsa_backward(&sparse, BppsaOptions::serial());
        assert!(gd.max_abs_diff(&gs) < 1e-9);
    }

    #[test]
    fn grad_x_indexing_matches_paper_convention() {
        let chain = random_chain(4, 2);
        let res = linear_backward(&chain);
        // ∇x_n is the seed itself.
        assert!(res.grad_x(4).approx_eq(chain.seed(), 0.0));
        // ∇x_3 = J_4^T ∇x_4.
        let j4 = match &chain.jacobians()[3] {
            ScanElement::Dense(m) => m.clone(),
            _ => unreachable!(),
        };
        assert!(res.grad_x(3).approx_eq(&j4.matvec(chain.seed()), 1e-12));
    }

    #[test]
    #[should_panic(expected = "grad_x")]
    fn grad_x_zero_is_rejected() {
        let chain = random_chain(2, 1);
        let res = linear_backward(&chain);
        let _ = res.grad_x(0);
    }

    #[test]
    fn single_layer_chain() {
        let mut chain = JacobianChain::new(Vector::from_vec(vec![2.0f64]));
        chain.push(ScanElement::Dense(Matrix::from_rows(&[&[3.0], &[4.0]])));
        let res = bppsa_backward(&chain, BppsaOptions::serial());
        assert_eq!(res.grads().len(), 1);
        assert_eq!(res.grad_x(1).as_slice(), &[2.0]); // ∇x_1 = seed (n=1)
    }

    #[test]
    fn default_options_are_serial_full() {
        let o = BppsaOptions::default();
        assert_eq!(o.executor, Executor::Serial);
        assert_eq!(o.schedule(16), ScanSchedule::full(16));
        assert_eq!(
            BppsaOptions::serial().hybrid(2).schedule(16),
            ScanSchedule::with_up_levels(16, 2)
        );
    }
}
