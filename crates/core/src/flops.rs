//! Per-step FLOP analysis of a BPPSA scan — the static analysis behind the
//! paper's Figure 11.
//!
//! §4.2: "due to the lack of a fair implementation, we perform our
//! experiments by calculating the FLOPs needed for each step in our method
//! and the baseline implementation through static analysis." This module
//! replays a schedule over a chain, recording for every `⊙` combine its
//! sparse FLOP count, its dense `m×n×k` complexity (Figure 11's x-axis), its
//! kind (matrix–vector vs matrix–matrix), and whether it sits on the
//! critical path (the most expensive combine of its level).

use crate::backward::BppsaOptions;
use crate::chain::JacobianChain;
use crate::element::{JacobianScanOp, ScanElement};
use bppsa_scan::{PhaseKind, ScanOp};
use bppsa_tensor::Scalar;

/// Whether a combine is a matrix–vector or matrix–matrix multiplication
/// (Figure 11's orange vs blue circles).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepKind {
    /// Matrix–vector product (a gradient fold).
    MatVec,
    /// Matrix–matrix product (a Jacobian fold).
    MatMat,
}

/// The FLOP record of one `⊙` combine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepFlops {
    /// Which phase of the scan the combine belongs to.
    pub phase: PhaseKind,
    /// Level within the phase (0 for the middle).
    pub level: usize,
    /// Matrix–vector or matrix–matrix.
    pub kind: StepKind,
    /// Actual FLOPs with the sparse representation (2 per multiply–add).
    pub flops: u64,
    /// `m·n·k` of the multiplication as if dense — "the theoretical runtime
    /// complexity of the step if the transposed Jacobian were not encoded in
    /// a sparse format" (Figure 11 caption).
    pub dense_mnk: u64,
    /// Whether this combine is the most expensive of its parallel level
    /// (and therefore on the critical path).
    pub critical: bool,
}

fn classify<S: Scalar>(left: &ScanElement<S>, right: &ScanElement<S>) -> Option<(StepKind, u64)> {
    // Returns (kind, dense m·n·k), or None for identity short-circuits.
    let (lr, lc) = left.shape()?;
    let (rr, rc) = right.shape()?;
    // combine(a, b) = b·a: result (rr × lc), inner dim rc == lr.
    debug_assert_eq!(rc, lr);
    if left.is_vector() {
        Some((StepKind::MatVec, (rr as u64) * (rc as u64)))
    } else {
        Some((StepKind::MatMat, (rr as u64) * (rc as u64) * (lc as u64)))
    }
}

/// Replays the scan induced by `opts` over `chain`, returning one record per
/// executed combine (identity short-circuits produce no record — they are
/// the paper's "logical data movements that do not have to be performed").
///
/// # Panics
///
/// Panics if the chain is invalid.
pub fn analyze_scan_flops<S: Scalar>(
    chain: &JacobianChain<S>,
    opts: BppsaOptions,
) -> Vec<StepFlops> {
    chain.validate();
    let op = JacobianScanOp;
    let mut a = chain.to_scan_array();
    let schedule = opts.schedule(a.len());
    let mut records = Vec::new();

    let record_level = |records: &mut Vec<StepFlops>,
                        level_records: &mut Vec<(usize, StepFlops)>| {
        if level_records.is_empty() {
            return;
        }
        let max_flops = level_records
            .iter()
            .map(|(_, r)| r.flops)
            .max()
            .unwrap_or(0);
        let mut marked = false;
        for (_, mut r) in level_records.drain(..) {
            if !marked && r.flops == max_flops {
                r.critical = true;
                marked = true;
            }
            records.push(r);
        }
    };

    // Up-sweep levels.
    for (d, level) in schedule.up_levels().iter().enumerate() {
        let mut level_records = Vec::new();
        for p in level {
            if let Some((kind, mnk)) = classify(&a[p.l], &a[p.r]) {
                let flops = ScanElement::combine_flops(&a[p.l], &a[p.r]);
                level_records.push((
                    p.r,
                    StepFlops {
                        phase: PhaseKind::UpSweep,
                        level: d,
                        kind,
                        flops,
                        dense_mnk: mnk,
                        critical: false,
                    },
                ));
            }
            a[p.r] = op.combine(&a[p.l], &a[p.r]);
        }
        record_level(&mut records, &mut level_records);
    }

    // Middle serial scan: every combine is on the critical path.
    {
        let mut running: ScanElement<S> = op.identity();
        for &root in schedule.block_roots() {
            if let Some((kind, mnk)) = classify(&running, &a[root]) {
                records.push(StepFlops {
                    phase: PhaseKind::Middle,
                    level: 0,
                    kind,
                    flops: ScanElement::combine_flops(&running, &a[root]),
                    dense_mnk: mnk,
                    critical: true,
                });
            }
            let next = op.combine(&running, &a[root]);
            a[root] = std::mem::replace(&mut running, next);
        }
    }

    // Down-sweep levels.
    let k = schedule.down_levels().len();
    for (idx, level) in schedule.down_levels().iter().enumerate() {
        let mut level_records = Vec::new();
        for p in level {
            let t = a[p.l].clone();
            // a[r] ⊙ t = t·a[r]: left operand is the incoming prefix a[r].
            if let Some((kind, mnk)) = classify(&a[p.r], &t) {
                level_records.push((
                    p.r,
                    StepFlops {
                        phase: PhaseKind::DownSweep,
                        level: k - 1 - idx,
                        kind,
                        flops: ScanElement::combine_flops(&a[p.r], &t),
                        dense_mnk: mnk,
                        critical: false,
                    },
                ));
            }
            let new_r = op.combine(&a[p.r], &t);
            a[p.l] = std::mem::replace(&mut a[p.r], new_r);
        }
        record_level(&mut records, &mut level_records);
    }

    records
}

/// The baseline's per-"gradient operator" FLOPs: classic BP applies each
/// transposed Jacobian to a gradient vector, one sequential matrix–vector
/// product per layer (all on the critical path — Figure 11's green circles).
pub fn analyze_baseline_flops<S: Scalar>(chain: &JacobianChain<S>) -> Vec<StepFlops> {
    chain.validate();
    let mut records = Vec::new();
    let mut grad_len = chain.seed().len();
    for jt in chain.jacobians().iter().rev() {
        let (rows, cols) = jt.shape().expect("matrix");
        debug_assert_eq!(cols, grad_len);
        let flops = match jt {
            ScanElement::Sparse(m) => bppsa_sparse::flops::spmv_flops(m),
            ScanElement::Dense(m) => 2 * (m.rows() as u64) * (m.cols() as u64),
            _ => unreachable!("chain holds matrices"),
        };
        records.push(StepFlops {
            phase: PhaseKind::Middle,
            level: 0,
            kind: StepKind::MatVec,
            flops,
            dense_mnk: (rows as u64) * (cols as u64),
            critical: true,
        });
        grad_len = rows;
    }
    records
}

/// Sums the FLOPs along the critical path: for each level, its most
/// expensive combine; for serial phases, everything. This models the
/// wall-clock cost under unbounded parallelism (§3.6's `Θ(log n)·P`).
pub fn critical_path_flops(records: &[StepFlops]) -> u64 {
    records.iter().filter(|r| r.critical).map(|r| r.flops).sum()
}

/// Sums all FLOPs (the work complexity `W`).
pub fn total_flops(records: &[StepFlops]) -> u64 {
    records.iter().map(|r| r.flops).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::JacobianChain;
    use bppsa_sparse::Csr;
    use bppsa_tensor::init::{seeded_rng, uniform_matrix, uniform_vector};
    use bppsa_tensor::Vector;

    fn chain(n: usize, d: usize) -> JacobianChain<f64> {
        let mut rng = seeded_rng(42);
        let mut c = JacobianChain::new(uniform_vector(&mut rng, d, 1.0));
        for _ in 0..n {
            c.push(ScanElement::Sparse(Csr::from_dense(&uniform_matrix(
                &mut rng, d, d, 1.0,
            ))));
        }
        c
    }

    #[test]
    fn record_count_matches_executed_combines() {
        let c = chain(7, 3);
        let records = analyze_scan_flops(&c, BppsaOptions::serial());
        // Some combines touch the identity (zero-cost, unrecorded), so the
        // count is bounded by the schedule's combine count.
        let sched = BppsaOptions::serial().schedule(8);
        assert!(records.len() <= sched.combine_count());
        assert!(!records.is_empty());
    }

    #[test]
    fn every_parallel_level_has_exactly_one_critical_op() {
        let c = chain(15, 2);
        let records = analyze_scan_flops(&c, BppsaOptions::serial());
        use std::collections::HashMap;
        let mut per_level: HashMap<(u8, usize), (usize, usize)> = HashMap::new();
        for r in &records {
            let phase_id = match r.phase {
                PhaseKind::UpSweep => 0u8,
                PhaseKind::Middle => 1,
                PhaseKind::DownSweep => 2,
            };
            let e = per_level.entry((phase_id, r.level)).or_insert((0, 0));
            e.0 += 1;
            if r.critical {
                e.1 += 1;
            }
        }
        for ((phase, level), (ops, crit)) in per_level {
            if phase == 1 {
                assert_eq!(ops, crit, "middle phase is fully critical");
            } else {
                assert_eq!(
                    crit, 1,
                    "phase {phase} level {level}: {ops} ops, {crit} critical"
                );
            }
        }
    }

    #[test]
    fn baseline_records_one_matvec_per_layer() {
        let c = chain(6, 4);
        let records = analyze_baseline_flops(&c);
        assert_eq!(records.len(), 6);
        assert!(records.iter().all(|r| r.kind == StepKind::MatVec));
        assert!(records.iter().all(|r| r.critical));
        // Dense 4x4 Jacobians: spmv = 2·16 = 32 FLOPs each.
        assert!(records.iter().all(|r| r.flops == 32));
        assert_eq!(total_flops(&records), 6 * 32);
    }

    #[test]
    fn scan_does_more_work_but_shorter_critical_path_per_step_count() {
        // With square dense-ish Jacobians, the scan's total work exceeds the
        // baseline's (matmuls vs matvecs), while its *step count* is O(log n)
        // vs O(n) — the §3.6 trade-off in miniature.
        let c = chain(31, 3);
        let scan = analyze_scan_flops(&c, BppsaOptions::serial());
        let base = analyze_baseline_flops(&c);
        assert!(total_flops(&scan) > total_flops(&base));
        let scan_steps: std::collections::HashSet<(u8, usize)> = scan
            .iter()
            .map(|r| {
                (
                    match r.phase {
                        PhaseKind::UpSweep => 0u8,
                        PhaseKind::Middle => 1,
                        PhaseKind::DownSweep => 2,
                    },
                    r.level,
                )
            })
            .collect();
        // Middle counts as its op count (serial).
        let middle_ops = scan.iter().filter(|r| r.phase == PhaseKind::Middle).count();
        let scan_critical_steps = scan_steps.len() - 1 + middle_ops;
        assert!(
            scan_critical_steps < base.len(),
            "scan steps {scan_critical_steps} vs baseline {}",
            base.len()
        );
    }

    #[test]
    fn hybrid_reduces_matmat_count() {
        let c = chain(31, 3);
        let full = analyze_scan_flops(&c, BppsaOptions::serial());
        let hybrid = analyze_scan_flops(&c, BppsaOptions::serial().hybrid(2));
        let mm = |rs: &[StepFlops]| rs.iter().filter(|r| r.kind == StepKind::MatMat).count();
        assert!(mm(&hybrid) < mm(&full));
    }

    #[test]
    fn dense_mnk_matches_shapes() {
        let mut c = JacobianChain::new(Vector::from_vec(vec![1.0f64, 1.0, 1.0]));
        c.push(ScanElement::Sparse(Csr::identity(3))); // J1^T: 3x3
        let records = analyze_scan_flops(&c, BppsaOptions::serial());
        // Single layer: one matvec of a 3x3: m·n·k = 9.
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].dense_mnk, 9);
        assert_eq!(records[0].kind, StepKind::MatVec);
        // Identity CSR stores 3 explicit ones → 6 FLOPs.
        assert_eq!(records[0].flops, 6);
    }
}
