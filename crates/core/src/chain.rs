//! The Jacobian chain: the input array of the paper's Equation 5.
//!
//! A [`JacobianChain`] owns the seed gradient `∇x_n l` and the transposed
//! Jacobians `(∂x_{i+1}/∂x_i)ᵀ` in *layer order* (`J₁ᵀ … J_nᵀ`), and lays
//! them out as the scan array `[∇x_n, J_nᵀ, …, J₁ᵀ]`.

use crate::element::ScanElement;
use bppsa_tensor::{Scalar, Vector};
use std::fmt;

/// The input of the BPPSA scan: seed gradient plus per-layer transposed
/// Jacobians.
///
/// Shape discipline: a chain for layers `f₁ … f_n` with activation sizes
/// `d₀, d₁, …, d_n` has `seed.len() == d_n` and `jacobians[i]` of shape
/// `d_i × d_{i+1}` (it maps `∇x_{i+1} → ∇x_i`). [`JacobianChain::push`]
/// validates this chaining as elements are added.
///
/// # Examples
///
/// ```
/// use bppsa_core::{JacobianChain, ScanElement};
/// use bppsa_tensor::{Matrix, Vector};
///
/// let mut chain = JacobianChain::new(Vector::from_vec(vec![1.0_f64, 0.0]));
/// chain.push(ScanElement::Dense(Matrix::identity(2)));   // J₁ᵀ: d₀=2 × d₁=2
/// assert_eq!(chain.num_layers(), 1);
/// assert_eq!(chain.to_scan_array().len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct JacobianChain<S> {
    seed: Vector<S>,
    /// Transposed Jacobians in layer order: `jacobians[i] = (∂x_{i+1}/∂x_i)ᵀ`.
    jacobians: Vec<ScanElement<S>>,
}

impl<S: Scalar> JacobianChain<S> {
    /// Creates a chain from the seed gradient `∇x_n l`.
    pub fn new(seed: Vector<S>) -> Self {
        Self {
            seed,
            jacobians: Vec::new(),
        }
    }

    /// Appends the transposed Jacobian of the **next layer toward the input**
    /// — i.e. push `J_nᵀ` is wrong; push in layer order `J₁ᵀ, J₂ᵀ, …, J_nᵀ`.
    /// The last pushed Jacobian must have `cols == seed.len()`.
    ///
    /// # Panics
    ///
    /// Panics if the element is a vector/identity, or if its column count
    /// does not match the rows of the previously pushed Jacobian.
    pub fn push(&mut self, jt: ScanElement<S>) {
        let (rows, cols) = match jt.shape() {
            Some(s) => s,
            None => panic!("JacobianChain::push: identity elements are not pushable"),
        };
        assert!(
            !jt.is_vector(),
            "JacobianChain::push: expected a matrix element"
        );
        if let Some(prev) = self.jacobians.last() {
            let (_, prev_cols) = prev.shape().expect("stored elements are matrices");
            assert_eq!(
                rows, prev_cols,
                "JacobianChain::push: J^T ({rows}x{cols}) does not chain into previous ({prev_cols} cols)"
            );
        }
        self.jacobians.push(jt);
    }

    /// The seed gradient `∇x_n l`.
    pub fn seed(&self) -> &Vector<S> {
        &self.seed
    }

    /// The transposed Jacobians in layer order (`J₁ᵀ` first).
    pub fn jacobians(&self) -> &[ScanElement<S>] {
        &self.jacobians
    }

    /// Mutable access to the seed gradient, for in-place value refresh
    /// between iterations. The length must not change (checked by
    /// [`JacobianChain::validate`] and by every consumer).
    pub fn seed_mut(&mut self) -> &mut Vector<S> {
        &mut self.seed
    }

    /// Mutable access to the Jacobians for in-place *value* refresh between
    /// iterations — the allocation-free way to feed a reused chain into
    /// `PlannedScan::execute_with`. Shapes and sparsity patterns must be
    /// preserved; [`JacobianChain::validate`] still checks the chaining.
    pub fn jacobians_mut(&mut self) -> &mut [ScanElement<S>] {
        &mut self.jacobians
    }

    /// Number of layers `n`.
    pub fn num_layers(&self) -> usize {
        self.jacobians.len()
    }

    /// Validates the complete chain: the seed must match `J_nᵀ`'s columns and
    /// consecutive Jacobians must chain.
    ///
    /// # Panics
    ///
    /// Panics with a diagnostic if any link is inconsistent.
    pub fn validate(&self) {
        if let Some(last) = self.jacobians.last() {
            let (_, cols) = last.shape().expect("matrix");
            assert_eq!(
                cols,
                self.seed.len(),
                "chain: J_n^T columns {cols} do not match seed length {}",
                self.seed.len()
            );
        }
        for w in self.jacobians.windows(2) {
            let (rows_next, _) = w[1].shape().expect("matrix");
            let (_, cols_prev) = w[0].shape().expect("matrix");
            assert_eq!(rows_next, cols_prev, "chain: inconsistent link");
        }
    }

    /// Builds the scan array of Equation 5:
    /// `[∇x_n, J_nᵀ, J_{n−1}ᵀ, …, J₁ᵀ]` (length `n + 1`).
    pub fn to_scan_array(&self) -> Vec<ScanElement<S>> {
        let mut arr = Vec::with_capacity(self.jacobians.len() + 1);
        arr.push(ScanElement::Vector(self.seed.clone()));
        arr.extend(self.jacobians.iter().rev().cloned());
        arr
    }

    /// Total payload bytes across all elements (for §3.6 accounting).
    pub fn memory_bytes(&self) -> usize {
        self.seed.len() * std::mem::size_of::<S>()
            + self
                .jacobians
                .iter()
                .map(ScanElement::memory_bytes)
                .sum::<usize>()
    }

    /// The largest single-element payload, `M_Jacob` in §3.6's space bound
    /// `M_Blelloch = Θ(max(n/p, 1)) · M_Jacob`.
    pub fn max_element_bytes(&self) -> usize {
        self.jacobians
            .iter()
            .map(ScanElement::memory_bytes)
            .max()
            .unwrap_or(0)
    }
}

impl<S: Scalar> fmt::Display for JacobianChain<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JacobianChain(n={}, seed_len={})",
            self.num_layers(),
            self.seed.len()
        )
    }
}

/// Converts the post-scan array `[I, ∇x_n, …, ∇x_1]` into gradients indexed
/// by layer: result `g` has `g[i] = ∇x_{i+1} l` for `i ∈ 0..n` (so `g[0]` is
/// the gradient at the output of the first layer and `g[n−1] == ∇x_n`).
///
/// # Panics
///
/// Panics if the array does not have the expected post-scan structure
/// (identity at position 0, vectors everywhere else).
pub fn gradients_from_scan_output<S: Scalar>(output: &[ScanElement<S>]) -> Vec<Vector<S>> {
    assert!(
        matches!(output.first(), Some(ScanElement::Identity) | None),
        "scan output must start with the identity"
    );
    let n = output.len().saturating_sub(1);
    let mut grads: Vec<Vector<S>> = Vec::with_capacity(n);
    // output[p] = ∇x_{n−p+1}; we want g[i] = ∇x_{i+1} = output[n − i].
    for i in 0..n {
        match &output[n - i] {
            ScanElement::Vector(v) => grads.push(v.clone()),
            other => panic!("scan output position {} is not a vector: {other}", n - i),
        }
    }
    grads
}

#[cfg(test)]
mod tests {
    use super::*;
    use bppsa_tensor::Matrix;

    fn dense(rows: usize, cols: usize, scale: f64) -> ScanElement<f64> {
        ScanElement::Dense(Matrix::from_fn(rows, cols, |i, j| {
            scale * ((i + 2 * j) as f64 * 0.1 - 0.2)
        }))
    }

    #[test]
    fn push_validates_chaining() {
        // Layer sizes d0=3, d1=2, d2=4 (seed length 4).
        let mut chain = JacobianChain::new(Vector::<f64>::zeros(4));
        chain.push(dense(3, 2, 1.0)); // J1^T: d0 x d1
        chain.push(dense(2, 4, 1.0)); // J2^T: d1 x d2
        chain.validate();
        assert_eq!(chain.num_layers(), 2);
    }

    #[test]
    #[should_panic(expected = "does not chain")]
    fn push_rejects_mismatched_link() {
        let mut chain = JacobianChain::new(Vector::<f64>::zeros(4));
        chain.push(dense(3, 2, 1.0));
        chain.push(dense(5, 5, 1.0)); // cols 5 != prev rows 3
    }

    #[test]
    #[should_panic(expected = "seed length")]
    fn validate_rejects_bad_seed() {
        let mut chain = JacobianChain::new(Vector::<f64>::zeros(3));
        chain.push(dense(2, 4, 1.0)); // J1^T with d1=4 ≠ seed 3
        chain.validate();
    }

    #[test]
    fn scan_array_layout_is_equation5() {
        let mut chain = JacobianChain::new(Vector::from_vec(vec![1.0f64, 2.0]));
        chain.push(dense(3, 5, 1.0)); // J1^T
        chain.push(dense(5, 2, 2.0)); // J2^T
        chain.validate();
        let arr = chain.to_scan_array();
        assert_eq!(arr.len(), 3);
        assert!(arr[0].is_vector()); // ∇x_n
        assert_eq!(arr[1].shape(), Some((5, 2))); // J2^T (outermost layer first)
        assert_eq!(arr[2].shape(), Some((3, 5))); // J1^T last
    }

    #[test]
    fn gradients_from_output_reverses_positions() {
        // Simulated post-scan array for n=2: [I, ∇x2, ∇x1].
        let out = vec![
            ScanElement::<f64>::Identity,
            ScanElement::Vector(Vector::from_vec(vec![2.0])), // ∇x_2
            ScanElement::Vector(Vector::from_vec(vec![1.0, 1.0])), // ∇x_1
        ];
        let grads = gradients_from_scan_output(&out);
        assert_eq!(grads.len(), 2);
        assert_eq!(grads[0].as_slice(), &[1.0, 1.0]); // g[0] = ∇x_1
        assert_eq!(grads[1].as_slice(), &[2.0]); // g[1] = ∇x_2
    }

    #[test]
    #[should_panic(expected = "start with the identity")]
    fn gradients_require_identity_head() {
        let out = vec![ScanElement::<f64>::Vector(Vector::zeros(1))];
        let _ = gradients_from_scan_output(&out);
    }

    #[test]
    fn memory_accounting() {
        let mut chain = JacobianChain::new(Vector::<f32>::zeros(2));
        chain.push(ScanElement::Dense(Matrix::<f32>::zeros(4, 2)));
        // seed 2×4B + matrix 8×4B.
        assert_eq!(chain.memory_bytes(), 8 + 32);
        assert_eq!(chain.max_element_bytes(), 32);
    }
}
