//! Whole-scan symbolic planning — §3.3 taken to its conclusion.
//!
//! The paper observes that generic sparse libraries (cuSPARSE) redo symbolic
//! work (non-zero counting, index merging) on every multiplication, and that
//! BPPSA's deterministic Jacobian patterns let that work be "performed prior
//! to training and removed from a generic sparse matrix multiplication
//! routine". [`SymbolicProduct`](bppsa_sparse::SymbolicProduct) hoists one
//! product's symbolic phase; [`PlannedScan`] hoists **the entire backward
//! pass**: it simulates the scan schedule once over sparsity patterns,
//! precomputing a plan for every matrix–matrix combine the up-sweep will
//! ever perform. Each subsequent training iteration then executes
//! numeric-only kernels end to end.
//!
//! Valid because the paper's premise holds by construction here: operators
//! generate Jacobians with input-independent *guaranteed* patterns (explicit
//! zeros kept), so the pattern of every intermediate product is the same at
//! every iteration.

use crate::backward::{BackwardResult, BppsaOptions};
use crate::chain::{gradients_from_scan_output, JacobianChain};
use crate::element::ScanElement;
use bppsa_scan::{global_pool, Executor, Pair, ScanSchedule};
use bppsa_sparse::{Csr, SparsityPattern, SymbolicProduct};
use bppsa_tensor::Scalar;
#[cfg(test)]
use bppsa_tensor::Vector;

/// What one up-sweep combine does, with its symbolic work precomputed.
#[derive(Debug, Clone)]
enum PlannedCombine {
    /// `vector ⊙ matrix` — an SpMV; needs no plan (output is dense).
    Spmv,
    /// `matrix ⊙ matrix` — numeric-only SpGEMM through a precomputed plan.
    Spgemm(Box<SymbolicProduct>),
}

/// Pattern-level element used while simulating the schedule.
#[derive(Debug, Clone)]
enum PatternElement {
    Vector(usize),
    Matrix(SparsityPattern),
}

/// A fully-planned BPPSA backward pass for one chain *shape*: reusable
/// across iterations as long as every Jacobian keeps its guaranteed pattern.
///
/// # Examples
///
/// ```
/// use bppsa_core::{bppsa_backward, BppsaOptions, JacobianChain, PlannedScan, ScanElement};
/// use bppsa_sparse::Csr;
/// use bppsa_tensor::Vector;
///
/// let mut chain = JacobianChain::new(Vector::from_vec(vec![1.0_f64, 2.0]));
/// chain.push(ScanElement::Sparse(Csr::from_diagonal(&[3.0, 4.0])));
/// chain.push(ScanElement::Sparse(Csr::from_diagonal(&[5.0, 6.0])));
///
/// let plan = PlannedScan::plan(&chain, BppsaOptions::serial());
/// let planned = plan.execute(&chain);
/// let unplanned = bppsa_backward(&chain, BppsaOptions::serial());
/// assert!(planned.max_abs_diff(&unplanned) < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct PlannedScan {
    schedule: ScanSchedule,
    /// One entry per up-sweep pair, level-major (parallel to
    /// `schedule.up_levels()`).
    up_plans: Vec<Vec<PlannedCombine>>,
    parallel: bool,
    /// FLOPs of all planned matrix–matrix combines (numeric phase).
    spgemm_flops: u64,
}

impl PlannedScan {
    /// Runs the symbolic phase for the whole scan induced by `opts` over the
    /// chain's patterns.
    ///
    /// # Panics
    ///
    /// Panics if the chain is invalid or contains non-CSR elements (dense
    /// chains have no symbolic work to hoist).
    pub fn plan<S: Scalar>(chain: &JacobianChain<S>, opts: BppsaOptions) -> Self {
        chain.validate();
        let mut patterns: Vec<PatternElement> = Vec::with_capacity(chain.num_layers() + 1);
        patterns.push(PatternElement::Vector(chain.seed().len()));
        for jt in chain.jacobians().iter().rev() {
            match jt {
                ScanElement::Sparse(m) => patterns.push(PatternElement::Matrix(m.pattern())),
                other => panic!("PlannedScan: chain must be all-CSR, found {other}"),
            }
        }

        let schedule = opts.schedule(patterns.len());
        let mut up_plans = Vec::with_capacity(schedule.up_levels().len());
        let mut spgemm_flops = 0u64;
        for level in schedule.up_levels() {
            let mut level_plans = Vec::with_capacity(level.len());
            for &Pair { l, r } in level {
                let combine = match (&patterns[l], &patterns[r]) {
                    (PatternElement::Vector(len), PatternElement::Matrix(m)) => {
                        assert_eq!(m.cols(), *len, "plan: spmv dimension mismatch");
                        patterns[r] = PatternElement::Vector(m.rows());
                        PlannedCombine::Spmv
                    }
                    (PatternElement::Matrix(a), PatternElement::Matrix(b)) => {
                        // combine(a, b) = b·a → spgemm(b, a).
                        let plan = SymbolicProduct::plan(b, a);
                        spgemm_flops += plan.flops();
                        patterns[r] = PatternElement::Matrix(plan.out_pattern().clone());
                        PlannedCombine::Spgemm(Box::new(plan))
                    }
                    (PatternElement::Matrix(_), PatternElement::Vector(_))
                    | (PatternElement::Vector(_), PatternElement::Vector(_)) => {
                        unreachable!("up-sweep right operands are never vectors")
                    }
                };
                level_plans.push(combine);
            }
            up_plans.push(level_plans);
        }

        Self {
            schedule,
            up_plans,
            parallel: !matches!(opts.executor, Executor::Serial),
            spgemm_flops,
        }
    }

    /// The schedule this plan executes.
    pub fn schedule(&self) -> &ScanSchedule {
        &self.schedule
    }

    /// Total FLOPs of the planned numeric SpGEMM work per execution.
    pub fn spgemm_flops(&self) -> u64 {
        self.spgemm_flops
    }

    /// Number of matrix–matrix combines that were symbolically planned.
    pub fn planned_products(&self) -> usize {
        self.up_plans
            .iter()
            .flatten()
            .filter(|p| matches!(p, PlannedCombine::Spgemm(_)))
            .count()
    }

    /// Executes the numeric-only backward pass over a chain with the same
    /// patterns this plan was built from.
    ///
    /// # Panics
    ///
    /// Panics if the chain's structure does not match the plan (length or,
    /// in debug builds, any operand pattern).
    pub fn execute<S: Scalar>(&self, chain: &JacobianChain<S>) -> BackwardResult<S> {
        assert_eq!(
            chain.num_layers() + 1,
            self.schedule.len(),
            "PlannedScan: chain length does not match the plan"
        );
        let mut a = chain.to_scan_array();

        // Up-sweep: planned combines.
        for (level, plans) in self.schedule.up_levels().iter().zip(&self.up_plans) {
            if self.parallel && level.len() >= 4 {
                self.run_up_level_pooled(&mut a, level, plans);
            } else {
                for (&Pair { l, r }, plan) in level.iter().zip(plans) {
                    a[r] = apply_planned(plan, &a[l], &a[r]);
                }
            }
        }

        // Middle + down-sweep: vector-only work, identical to the generic
        // path (no symbolic content to hoist).
        let op = crate::element::JacobianScanOp;
        {
            use bppsa_scan::ScanOp;
            let mut running: ScanElement<S> = op.identity();
            for &root in self.schedule.block_roots() {
                let old = std::mem::replace(&mut a[root], op.identity());
                let next = op.combine(&running, &old);
                a[root] = std::mem::replace(&mut running, next);
            }
            for level in self.schedule.down_levels() {
                for &Pair { l, r } in level {
                    let t = std::mem::replace(&mut a[l], op.identity());
                    let new_r = op.combine(&a[r], &t);
                    a[l] = std::mem::replace(&mut a[r], new_r);
                }
            }
        }

        BackwardResult::from_grads(gradients_from_scan_output(&a))
    }

    /// Parallel up-sweep level: compute results into a staging vector on the
    /// shared pool, then commit (combines within a level are independent).
    fn run_up_level_pooled<S: Scalar>(
        &self,
        a: &mut [ScanElement<S>],
        level: &[Pair],
        plans: &[PlannedCombine],
    ) {
        let staged: Vec<parking_lot_free::Slot<ScanElement<S>>> =
            (0..level.len()).map(|_| parking_lot_free::Slot::new()).collect();
        let a_ref: &[ScanElement<S>] = a;
        global_pool().run_indexed(level.len(), &|i| {
            let Pair { l, r } = level[i];
            staged[i].set(apply_planned(&plans[i], &a_ref[l], &a_ref[r]));
        });
        for (i, &Pair { r, .. }) in level.iter().enumerate() {
            a[r] = staged[i].take();
        }
    }
}

/// Applies one planned combine: `a[l] ⊙ a[r]` with hoisted symbolic work.
fn apply_planned<S: Scalar>(
    plan: &PlannedCombine,
    left: &ScanElement<S>,
    right: &ScanElement<S>,
) -> ScanElement<S> {
    match (plan, left, right) {
        (PlannedCombine::Spmv, ScanElement::Vector(v), ScanElement::Sparse(m)) => {
            ScanElement::Vector(m.spmv(v))
        }
        (PlannedCombine::Spgemm(p), ScanElement::Sparse(ma), ScanElement::Sparse(mb)) => {
            // combine(a, b) = b·a.
            debug_assert!(pattern_matches(p, mb, ma));
            ScanElement::Sparse(p.execute_unchecked(mb, ma))
        }
        (plan, l, r) => panic!("PlannedScan: plan/operand mismatch ({plan:?} on {l} ⊙ {r})"),
    }
}

fn pattern_matches<S: Scalar>(plan: &SymbolicProduct, b: &Csr<S>, a: &Csr<S>) -> bool {
    let (rows, cols) = (b.rows(), a.cols());
    plan.out_pattern().shape() == (rows, cols)
}

/// A minimal single-writer slot used by the pooled up-sweep staging (avoids
/// `Mutex<Option<T>>` overhead; each index is written exactly once).
mod parking_lot_free {
    use std::cell::UnsafeCell;

    pub struct Slot<T>(UnsafeCell<Option<T>>);
    // SAFETY: each slot is written by exactly one pool task (unique index)
    // and read only after the pool barrier.
    unsafe impl<T: Send> Sync for Slot<T> {}

    impl<T> Slot<T> {
        pub fn new() -> Self {
            Slot(UnsafeCell::new(None))
        }
        pub fn set(&self, value: T) {
            // SAFETY: unique writer per slot (pool index disjointness).
            unsafe { *self.0.get() = Some(value) }
        }
        #[allow(clippy::mut_from_ref)]
        pub fn take(&self) -> T {
            // SAFETY: called single-threaded after the barrier.
            unsafe { (*self.0.get()).take().expect("slot written") }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backward::{bppsa_backward, linear_backward};
    use bppsa_tensor::init::{seeded_rng, uniform_vector};
    use rand::Rng;

    /// Random sparse chain with ~40% density and varying widths.
    fn sparse_chain(n: usize, seed: u64) -> JacobianChain<f64> {
        let mut rng = seeded_rng(seed);
        let dims: Vec<usize> = (0..=n).map(|i| 3 + (i * 2 + seed as usize) % 4).collect();
        let mut chain = JacobianChain::new(uniform_vector(&mut rng, dims[n], 1.0));
        for i in 0..n {
            let dense = bppsa_tensor::Matrix::from_fn(dims[i], dims[i + 1], |_, _| {
                if rng.random_range(0.0..1.0) < 0.4 {
                    rng.random_range(-1.0..1.0)
                } else {
                    0.0
                }
            });
            chain.push(ScanElement::Sparse(Csr::from_dense(&dense)));
        }
        chain
    }

    #[test]
    fn planned_matches_unplanned_various_lengths() {
        for n in [1usize, 2, 3, 7, 8, 15, 33] {
            let chain = sparse_chain(n, n as u64);
            let plan = PlannedScan::plan(&chain, BppsaOptions::serial());
            let planned = plan.execute(&chain);
            let reference = bppsa_backward(&chain, BppsaOptions::serial());
            let diff = planned.max_abs_diff(&reference);
            assert!(diff < 1e-12, "n={n}: diff {diff}");
        }
    }

    #[test]
    fn planned_hybrid_matches_linear_reference() {
        let chain = sparse_chain(21, 4);
        let reference = linear_backward(&chain);
        for k in 0..5 {
            let plan = PlannedScan::plan(&chain, BppsaOptions::serial().hybrid(k));
            let diff = plan.execute(&chain).max_abs_diff(&reference);
            assert!(diff < 1e-10, "k={k}: diff {diff}");
        }
    }

    #[test]
    fn plan_reuses_across_value_changes() {
        // The whole point: same patterns, new values, no re-planning.
        let chain = sparse_chain(12, 9);
        let plan = PlannedScan::plan(&chain, BppsaOptions::serial());
        let mut chain2 = JacobianChain::new(chain.seed().scaled(2.0));
        for jt in chain.jacobians() {
            if let ScanElement::Sparse(m) = jt {
                chain2.push(ScanElement::Sparse(m.map_values(|v| v * 0.5 - 0.1)));
            }
        }
        let planned = plan.execute(&chain2);
        let reference = bppsa_backward(&chain2, BppsaOptions::serial());
        assert!(planned.max_abs_diff(&reference) < 1e-12);
    }

    #[test]
    fn pooled_execution_matches_serial() {
        let chain = sparse_chain(40, 11);
        let serial_plan = PlannedScan::plan(&chain, BppsaOptions::serial());
        let pooled_plan = PlannedScan::plan(&chain, BppsaOptions::pooled());
        let diff = serial_plan
            .execute(&chain)
            .max_abs_diff(&pooled_plan.execute(&chain));
        assert!(diff < 1e-12);
    }

    #[test]
    fn plan_accounting_is_consistent() {
        let chain = sparse_chain(15, 13);
        let plan = PlannedScan::plan(&chain, BppsaOptions::serial());
        // 16-element array: up-sweep has 8+4+2 = 14 combines; the leftmost
        // pair of level 0 is an SpMV, deeper leftmost pairs fold the vector.
        let schedule = plan.schedule();
        let up_pairs: usize = schedule.up_levels().iter().map(Vec::len).sum();
        assert_eq!(plan.planned_products() + count_spmv(&plan), up_pairs);
        assert!(plan.spgemm_flops() > 0);
    }

    fn count_spmv(plan: &PlannedScan) -> usize {
        plan.up_plans
            .iter()
            .flatten()
            .filter(|p| matches!(p, PlannedCombine::Spmv))
            .count()
    }

    #[test]
    #[should_panic(expected = "all-CSR")]
    fn dense_chain_is_rejected() {
        let mut chain = JacobianChain::new(Vector::<f64>::zeros(2));
        chain.push(ScanElement::Dense(bppsa_tensor::Matrix::identity(2)));
        let _ = PlannedScan::plan(&chain, BppsaOptions::serial());
    }

    #[test]
    #[should_panic(expected = "does not match the plan")]
    fn wrong_length_chain_is_rejected() {
        let chain = sparse_chain(8, 17);
        let plan = PlannedScan::plan(&chain, BppsaOptions::serial());
        let other = sparse_chain(9, 18);
        let _ = plan.execute(&other);
    }
}
