//! Whole-scan symbolic planning — §3.3 taken to its conclusion.
//!
//! The paper observes that generic sparse libraries (cuSPARSE) redo symbolic
//! work (non-zero counting, index merging) on every multiplication, and that
//! BPPSA's deterministic Jacobian patterns let that work be "performed prior
//! to training and removed from a generic sparse matrix multiplication
//! routine". [`SymbolicProduct`](bppsa_sparse::SymbolicProduct) hoists one
//! product's symbolic phase; [`PlannedScan`] hoists **the entire backward
//! pass**: it simulates the scan schedule once over sparsity patterns and
//! compiles it into a straight-line program of numeric-only kernels over a
//! fixed set of buffers.
//!
//! # Plan once, execute many
//!
//! The intended steady-state training-loop lifecycle is:
//!
//! 1. **Plan** (once, before training): [`PlannedScan::plan`] simulates the
//!    schedule over the chain's patterns. Every up-sweep matrix–matrix
//!    combine becomes a numeric-only [`SymbolicProduct`]; every SpMV's
//!    output length is recorded; identity combines are resolved at plan time
//!    and vanish from the program entirely. Each instruction writes a fresh
//!    single-assignment buffer whose exact size/pattern is known now.
//! 2. **Allocate** (once): [`PlannedScan::workspace`] materializes every
//!    buffer the program will ever touch — intermediate matrices (sharing
//!    the plan's `Arc` patterns), staging vectors for the middle/down
//!    sweeps, and the gradient output vectors.
//! 3. **Execute** (every iteration): [`PlannedScan::execute_with`] runs the
//!    compiled program over a chain with the same patterns and the reused
//!    workspace. The steady state performs **zero heap allocations** with
//!    the serial executor, and only the worker pool's one batch header per
//!    parallel level otherwise.
//!
//! ```
//! use bppsa_core::{BppsaOptions, JacobianChain, PlannedScan, ScanElement};
//! use bppsa_sparse::Csr;
//! use bppsa_tensor::Vector;
//!
//! let mut chain = JacobianChain::new(Vector::from_vec(vec![1.0_f64, 2.0]));
//! chain.push(ScanElement::Sparse(Csr::from_diagonal(&[3.0, 4.0])));
//! chain.push(ScanElement::Sparse(Csr::from_diagonal(&[5.0, 6.0])));
//!
//! let plan = PlannedScan::plan(&chain, BppsaOptions::serial());
//! let mut ws = plan.workspace::<f64>();
//! for _ in 0..3 {
//!     // … forward pass refreshes the chain's Jacobian *values* …
//!     let grads = plan.execute_with(&chain, &mut ws);
//!     assert_eq!(grads.grads().len(), 2);
//! }
//! ```
//!
//! Valid because the paper's premise holds by construction here: operators
//! generate Jacobians with input-independent *guaranteed* patterns (explicit
//! zeros kept), so the pattern of every intermediate product is the same at
//! every iteration.
//!
//! # Cost-aware parallelism
//!
//! Instead of a hardcoded pairs-per-level cutoff, the executor prices each
//! compiled stage with its planned FLOPs: a stage fans its instructions out
//! across the shared [`WorkerPool`](bppsa_scan::WorkerPool) only when the
//! stage is heavy enough to amortize a pool wakeup *and* each task gets a
//! meaningful slice; a single heavy SpGEMM instead runs **row-chunk
//! parallel** through
//! [`SymbolicProduct::execute_into_parallel`](bppsa_sparse::SymbolicProduct::execute_into_parallel).

use crate::backward::{BackwardResult, BppsaOptions};
use crate::chain::JacobianChain;
use crate::diagonal::{DiagonalKernel, DiagonalScanPlan, DiagonalWorkspace};
use crate::element::ScanElement;
use crate::segmented::{balanced_cuts, segments_from_cuts, SegmentSlice, SegmentedPlan};
use bppsa_scan::{global_pool, Executor, Pair, PhaseKind, ScanSchedule, SendPtr, WorkerGroup};
use bppsa_sparse::{
    Csr, KernelMode, KernelScratch, NumericKernel, SparsityPattern, SymbolicProduct,
};
use bppsa_tensor::{Scalar, Vector};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Minimum planned FLOPs before a stage is worth a pool wakeup at all.
const STAGE_PARALLEL_MIN_FLOPS: u64 = 32_768;
/// Minimum planned FLOPs per pool task; below this, fan-out overhead wins.
const TASK_MIN_FLOPS: u64 = 8_192;
/// Minimum planned FLOPs before a single SpGEMM runs row-chunk parallel.
const ROW_PARALLEL_MIN_FLOPS: u64 = 32_768;

/// Where a value lives during compiled execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Loc {
    /// The chain's seed gradient `∇x_n l`.
    Seed,
    /// The chain's `jacobians()[i]` (layer order).
    Jacobian(usize),
    /// Workspace buffer `i`.
    Buf(usize),
}

/// Shape of one single-assignment workspace buffer, fixed at plan time.
#[derive(Debug, Clone)]
enum BufferSpec {
    /// A gradient-vector intermediate of the given length.
    Vector(usize),
    /// A matrix-fold intermediate with the given (shared) pattern.
    Matrix(Arc<SparsityPattern>),
}

/// One numeric instruction of the compiled program.
#[derive(Debug, Clone)]
enum Instr {
    /// `buf[dst] ← mat · vec` (numeric SpMV).
    Spmv { mat: Loc, vec: Loc, dst: usize },
    /// `buf[dst] ← lhs · rhs` through `spgemm_plans[plan]` (numeric-only).
    Spgemm {
        plan: usize,
        lhs: Loc,
        rhs: Loc,
        dst: usize,
    },
}

/// A group of instructions with a shared synchronization barrier (one scan
/// level, or the serial middle phase).
#[derive(Debug, Clone)]
struct Stage {
    instrs: Vec<Instr>,
    /// Whether the schedule permits running the instructions concurrently.
    parallel: bool,
    /// Total planned FLOPs of the stage (drives the parallelization choice).
    flops: u64,
    /// Planned FLOPs of the single heaviest instruction: a stage dominated
    /// by one combine is better served by row-parallelism inside that
    /// combine than by fanning the instruction list out.
    max_instr_flops: u64,
    /// Planned FLOPs of each instruction, parallel to `instrs` (segment
    /// slices price their share of a stage from these).
    instr_flops: Vec<u64>,
    /// Schedule block each instruction belongs to, parallel to `instrs` and
    /// nondecreasing (instructions ascend by written scan position), so a
    /// segment's share of a stage is a contiguous slice found by
    /// `partition_point`. Middle-stage instructions carry the block of the
    /// root they fold — informational only; the middle always runs serially.
    blocks: Vec<usize>,
    /// Which scan phase the stage came from: segmentation partitions
    /// up/down stages per segment and pins the middle to the caller.
    phase: PhaseKind,
}

/// Pattern-level value tracked while simulating the schedule.
#[derive(Debug, Clone)]
enum Sim {
    Identity,
    Vec { len: usize, loc: Loc },
    Mat { pat: Arc<SparsityPattern>, loc: Loc },
}

/// A fully-planned BPPSA backward pass for one chain *shape*: reusable
/// across iterations as long as every Jacobian keeps its guaranteed pattern.
///
/// See the source module's docs for the plan/workspace/execute lifecycle.
///
/// # Examples
///
/// ```
/// use bppsa_core::{bppsa_backward, BppsaOptions, JacobianChain, PlannedScan, ScanElement};
/// use bppsa_sparse::Csr;
/// use bppsa_tensor::Vector;
///
/// let mut chain = JacobianChain::new(Vector::from_vec(vec![1.0_f64, 2.0]));
/// chain.push(ScanElement::Sparse(Csr::from_diagonal(&[3.0, 4.0])));
/// chain.push(ScanElement::Sparse(Csr::from_diagonal(&[5.0, 6.0])));
///
/// let plan = PlannedScan::plan(&chain, BppsaOptions::serial());
/// let planned = plan.execute(&chain);
/// let unplanned = bppsa_backward(&chain, BppsaOptions::serial());
/// assert!(planned.max_abs_diff(&unplanned) < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct PlannedScan {
    schedule: ScanSchedule,
    /// Expected operand patterns, layer order (`jacobians()[i]`).
    input_patterns: Vec<Arc<SparsityPattern>>,
    seed_len: usize,
    /// The compiled numeric program (plan-kind selected at plan time).
    program: Program,
    /// Plan-time chain segmentation (`None` = unsegmented): contiguous
    /// block runs whose up/down instruction slices execute concurrently on
    /// carved worker groups, stitched through the serial middle. Exact —
    /// same instruction multiset, same buffers, bit-for-bit results.
    segmented: Option<SegmentedPlan>,
    parallel: bool,
    /// Wall-clock cost of the symbolic phase that built this plan — the
    /// observability hook serving-layer lane bring-up reports.
    build_time: Duration,
    /// Identity token tying workspaces to the plan they were built from.
    token: Arc<()>,
}

/// The two program kinds a plan compiles to. Selection happens once, at
/// plan time, from the chain's *patterns* (value-independent): all-diagonal
/// chains get the dense elementwise program of [`crate::diagonal`] (unless
/// [`crate::DiagonalMode::Disabled`]), everything else the generic CSR SSA
/// program. Both run under the identical schedule, workspace lifecycle, and
/// zero-allocation steady state.
#[derive(Debug, Clone)]
enum Program {
    /// Generic sparse SSA program: hoisted symbolic products + SpMVs over
    /// single-assignment CSR/vector buffers.
    Csr(CsrProgram),
    /// All-diagonal elementwise program over dense `(n + 2) × width` planes.
    Diagonal(DiagonalScanPlan),
}

/// The program kind a [`PlannedScan`] compiled to — the public view of the
/// plan-time selection (see [`PlannedScan::plan_kind`]). `bppsa-serve`
/// surfaces it per lane through the lane metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlanKind {
    /// Generic sparse SSA program (hoisted symbolic products + SpMVs).
    Csr,
    /// All-diagonal elementwise fast path.
    Diagonal,
}

/// Per-kernel counts over a plan's hoisted symbolic products — how many
/// combines resolved to each [`NumericKernel`] (see
/// [`PlannedScan::kernel_counts`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KernelCounts {
    /// Combines running the precomputed gather program.
    pub gather: usize,
    /// Combines running the planned row-by-row Gustavson kernel.
    pub gustavson: usize,
    /// Combines running the dense packed-panel microkernel.
    pub dense: usize,
}

impl KernelCounts {
    /// Total planned matrix–matrix combines.
    pub fn total(&self) -> usize {
        self.gather + self.gustavson + self.dense
    }
}

/// The generic sparse compiled program (the original `PlannedScan` body).
#[derive(Debug, Clone)]
struct CsrProgram {
    /// Single-assignment buffer shapes, indexed by `Loc::Buf`.
    buffers: Vec<BufferSpec>,
    /// Hoisted symbolic products, referenced by `Instr::Spgemm::plan`.
    spgemm_plans: Vec<SymbolicProduct>,
    /// The compiled program: up levels, middle, down levels, in order.
    stages: Vec<Stage>,
    /// Gradient sources: `outputs[i]` holds `∇x_{i+1}` after execution.
    outputs: Vec<Loc>,
    /// FLOPs of all planned matrix–matrix combines (numeric phase).
    spgemm_flops: u64,
}

/// Caller-owned buffers for [`PlannedScan::execute_with`]: every
/// intermediate the compiled program writes, pre-sized at plan time, plus
/// the gradient output vectors. Reusing one workspace across iterations
/// makes the steady-state backward pass allocation-free.
#[derive(Debug)]
pub struct ScanWorkspace<S> {
    body: WsBody<S>,
    result: BackwardResult<S>,
    token: Arc<()>,
}

/// Kind-matched buffer storage: CSR programs use the SSA buffer list,
/// diagonal programs the dense planes. The token check in
/// [`PlannedScan::execute_with`] guarantees the body matches the program.
#[derive(Debug)]
enum WsBody<S> {
    Csr {
        bufs: Vec<WorkBuf<S>>,
        /// Per-product numeric scratch, indexed like the program's
        /// `spgemm_plans` (each `Spgemm` instruction references a unique
        /// plan, so instruction-parallel stages touch disjoint scratches).
        scratches: Vec<KernelScratch<S>>,
    },
    Diagonal(DiagonalWorkspace<S>),
}

#[derive(Debug)]
enum WorkBuf<S> {
    Vec(Vector<S>),
    Mat(Csr<S>),
}

impl PlannedScan {
    /// Runs the symbolic phase for the whole scan induced by `opts` over the
    /// chain's patterns, compiling every combine the schedule will ever
    /// perform into a numeric-only instruction.
    ///
    /// # Panics
    ///
    /// Panics if the chain is invalid or contains non-CSR elements (dense
    /// chains have no symbolic work to hoist).
    pub fn plan<S: Scalar>(chain: &JacobianChain<S>, opts: BppsaOptions) -> Self {
        let build_start = Instant::now();
        chain.validate();
        let n = chain.num_layers();
        let input_patterns: Vec<Arc<SparsityPattern>> = chain
            .jacobians()
            .iter()
            .map(|jt| match jt {
                ScanElement::Sparse(m) => m.pattern(),
                other => panic!("PlannedScan: chain must be all-CSR, found {other}"),
            })
            .collect();
        let seed_len = chain.seed().len();
        let schedule = opts.schedule(n + 1);

        // Plan-kind selection: all-diagonal chains take the elementwise
        // fast path (same schedule, dense planes); everything else gets the
        // generic CSR SSA program.
        let program = match opts.diagonal.select(n, seed_len, &input_patterns) {
            Some(kernel) => {
                Program::Diagonal(DiagonalScanPlan::compile(n, seed_len, kernel, &schedule))
            }
            None => Program::Csr(CsrProgram::compile(
                &schedule,
                &input_patterns,
                seed_len,
                opts.kernel,
            )),
        };

        // Segmentation slices the compiled CSR program at block boundaries
        // (diagonal programs stay unsegmented: their levels are elementwise
        // over dense planes and already fan out width-wise).
        let segmented = match &program {
            Program::Csr(p) if opts.segments > 1 => {
                build_segmentation(p, &schedule, &input_patterns, seed_len, opts.segments)
            }
            _ => None,
        };

        Self {
            schedule,
            input_patterns,
            seed_len,
            program,
            segmented,
            parallel: !matches!(opts.executor, Executor::Serial),
            build_time: build_start.elapsed(),
            token: Arc::new(()),
        }
    }

    /// Wall-clock time the symbolic phase took to build this plan.
    ///
    /// Planning is the one expensive, allocation-heavy step of the
    /// plan→workspace→execute lifecycle; callers that build plans on demand
    /// (the `bppsa-serve` lane bring-up, the [`PlannedBackwardCache`]) report
    /// it for cold-start observability.
    pub fn build_time(&self) -> Duration {
        self.build_time
    }

    /// The schedule this plan executes.
    pub fn schedule(&self) -> &ScanSchedule {
        &self.schedule
    }

    /// Total FLOPs of the planned numeric SpGEMM work per execution.
    /// Diagonal programs plan no symbolic products and report `0`; their
    /// elementwise work is [`PlannedScan::elementwise_flops`].
    pub fn spgemm_flops(&self) -> u64 {
        match &self.program {
            Program::Csr(p) => p.spgemm_flops,
            Program::Diagonal(_) => 0,
        }
    }

    /// Total elementwise multiplies per execution of a diagonal program
    /// (`0` for CSR programs, whose work is [`PlannedScan::spgemm_flops`]).
    pub fn elementwise_flops(&self) -> u64 {
        match &self.program {
            Program::Csr(_) => 0,
            Program::Diagonal(d) => d.flops(),
        }
    }

    /// Which diagonal kernel this plan compiled to, or `None` when the
    /// chain was not all-diagonal (or the fast path was
    /// [`crate::DiagonalMode::Disabled`]).
    pub fn diagonal_kernel(&self) -> Option<DiagonalKernel> {
        match &self.program {
            Program::Csr(_) => None,
            Program::Diagonal(d) => Some(d.kernel()),
        }
    }

    /// Which program kind this plan compiled to — the public, serve-facing
    /// view of the internal program enum (`bppsa-serve` lane metrics report
    /// it per lane).
    pub fn plan_kind(&self) -> PlanKind {
        match &self.program {
            Program::Csr(_) => PlanKind::Csr,
            Program::Diagonal(_) => PlanKind::Diagonal,
        }
    }

    /// Per-kernel counts over this plan's hoisted symbolic products — the
    /// kernel-mode mix a [`KernelMode`] resolved to across the program's
    /// combines. Diagonal programs plan no products and report all zeros.
    pub fn kernel_counts(&self) -> KernelCounts {
        let mut counts = KernelCounts::default();
        if let Program::Csr(p) = &self.program {
            for plan in &p.spgemm_plans {
                match plan.kernel() {
                    NumericKernel::Gather => counts.gather += 1,
                    NumericKernel::Gustavson => counts.gustavson += 1,
                    NumericKernel::Dense => counts.dense += 1,
                }
            }
        }
        counts
    }

    /// Accumulator lanes each combine's [`KernelScratch`] is sized for:
    /// one per row chunk the parallel executor could fan out to, or a
    /// single lane under the serial executor. Segmented plans never
    /// row-parallelize a single combine (the pool's workers are carved
    /// into per-segment groups instead), so one lane suffices — the
    /// workspace shrinks accordingly.
    fn scratch_lanes(&self) -> usize {
        if self.parallel && self.segmented.is_none() {
            global_pool().size() + 1
        } else {
            1
        }
    }

    /// Number of concurrently-scanned chain segments this plan executes
    /// (`1` = unsegmented).
    pub fn segments(&self) -> usize {
        self.segmented.as_ref().map_or(1, SegmentedPlan::segments)
    }

    /// The plan's segmentation — block ownership, interface widths — or
    /// `None` when the plan is unsegmented (a one-segment request, a
    /// diagonal program, or a schedule with too few blocks).
    pub fn segmentation(&self) -> Option<&SegmentedPlan> {
        self.segmented.as_ref()
    }

    /// For diagonal plans: the largest pool fan-out any level would request
    /// from a `workers`-wide pool (`None` for CSR plans). Exposes the
    /// width-gated chunking policy ([`crate::diagonal_level_tasks`]) at the
    /// plan level, so tests can pin that a `width = 1` chain of any length
    /// never leaves the submitting thread.
    pub fn diagonal_level_fanout(&self, workers: usize) -> Option<usize> {
        match &self.program {
            Program::Csr(_) => None,
            Program::Diagonal(d) => Some(d.max_level_tasks(workers)),
        }
    }

    /// Number of matrix–matrix combines that were symbolically planned
    /// (`0` for diagonal programs — avoiding them is the point).
    pub fn planned_products(&self) -> usize {
        match &self.program {
            Program::Csr(p) => p.spgemm_plans.len(),
            Program::Diagonal(_) => 0,
        }
    }

    /// Number of planned SpMV combines (`0` for diagonal programs).
    pub fn planned_spmvs(&self) -> usize {
        match &self.program {
            Program::Csr(p) => p
                .stages
                .iter()
                .flat_map(|s| &s.instrs)
                .filter(|i| matches!(i, Instr::Spmv { .. }))
                .count(),
            Program::Diagonal(_) => 0,
        }
    }

    /// Total bytes of workspace buffer payload an execution reuses.
    pub fn workspace_bytes<S: Scalar>(&self) -> usize {
        match &self.program {
            Program::Csr(p) => {
                let lanes = self.scratch_lanes();
                p.buffers
                    .iter()
                    .map(|spec| match spec {
                        BufferSpec::Vector(len) => len * std::mem::size_of::<S>(),
                        BufferSpec::Matrix(pat) => pat.nnz() * std::mem::size_of::<S>(),
                    })
                    .sum::<usize>()
                    + p.spgemm_plans
                        .iter()
                        .map(|plan| plan.scratch_bytes::<S>(lanes))
                        .sum::<usize>()
            }
            Program::Diagonal(d) => d.workspace_bytes::<S>(),
        }
    }

    /// Allocates the workspace this plan's program executes over: every
    /// intermediate buffer plus the gradient outputs, fully pre-sized.
    pub fn workspace<S: Scalar>(&self) -> ScanWorkspace<S> {
        let (body, grads): (WsBody<S>, Vec<Vector<S>>) = match &self.program {
            Program::Csr(p) => {
                let bufs = p
                    .buffers
                    .iter()
                    .map(|spec| match spec {
                        BufferSpec::Vector(len) => WorkBuf::Vec(Vector::zeros(*len)),
                        BufferSpec::Matrix(pat) => WorkBuf::Mat(Csr::from_pattern(Arc::clone(pat))),
                    })
                    .collect();
                let grads = p
                    .outputs
                    .iter()
                    .map(|loc| match loc {
                        Loc::Seed => Vector::zeros(self.seed_len),
                        Loc::Buf(j) => match &p.buffers[*j] {
                            BufferSpec::Vector(len) => Vector::zeros(*len),
                            BufferSpec::Matrix(_) => {
                                unreachable!("gradient output is a matrix buffer")
                            }
                        },
                        Loc::Jacobian(_) => unreachable!("gradient output is a Jacobian"),
                    })
                    .collect();
                // One scratch per hoisted product, pre-sized for the widest
                // row-chunk fan-out the executor could request — the dense
                // panels and accumulator lanes are part of the workspace, so
                // the steady state stays allocation-free for every kernel.
                let lanes = self.scratch_lanes();
                let scratches = p
                    .spgemm_plans
                    .iter()
                    .map(|plan| plan.scratch::<S>(lanes))
                    .collect();
                (WsBody::Csr { bufs, scratches }, grads)
            }
            Program::Diagonal(d) => {
                // Diagonal outputs are all seed-width vectors.
                let grads = (0..self.input_patterns.len())
                    .map(|_| Vector::zeros(self.seed_len))
                    .collect();
                (WsBody::Diagonal(d.workspace()), grads)
            }
        };
        ScanWorkspace {
            body,
            result: BackwardResult::from_grads(grads),
            token: Arc::clone(&self.token),
        }
    }

    /// Executes the numeric-only backward pass over a chain with the same
    /// patterns this plan was built from (convenience wrapper that allocates
    /// a throwaway workspace; training loops should reuse one via
    /// [`PlannedScan::execute_with`]).
    ///
    /// # Panics
    ///
    /// As [`PlannedScan::execute_with`].
    pub fn execute<S: Scalar>(&self, chain: &JacobianChain<S>) -> BackwardResult<S> {
        let mut ws = self.workspace();
        self.execute_with(chain, &mut ws).clone()
    }

    /// Executes the compiled numeric program over `chain` using the reused
    /// `workspace`, returning the gradients stored in the workspace.
    ///
    /// After the first call warms the buffers, subsequent calls perform zero
    /// heap allocations under the serial executor (and only the worker
    /// pool's per-level batch header otherwise).
    ///
    /// # Panics
    ///
    /// Panics if the chain's length or any operand's shape does not match
    /// the plan, if the workspace was built from a different plan, or (in
    /// debug builds) if any operand's *pattern* deviates from the planned
    /// pattern.
    pub fn execute_with<'w, S: Scalar>(
        &self,
        chain: &JacobianChain<S>,
        workspace: &'w mut ScanWorkspace<S>,
    ) -> &'w BackwardResult<S> {
        self.check_chain(chain);
        assert!(
            Arc::ptr_eq(&self.token, &workspace.token),
            "PlannedScan: workspace was built from a different plan"
        );

        match (&self.program, &mut workspace.body) {
            (
                Program::Csr(p),
                WsBody::Csr {
                    bufs: ws_bufs,
                    scratches,
                },
            ) => {
                debug_assert_eq!(scratches.len(), p.spgemm_plans.len());
                let bufs: *mut WorkBuf<S> = ws_bufs.as_mut_ptr();
                let scratch: *mut KernelScratch<S> = scratches.as_mut_ptr();
                if let Some(seg) = &self.segmented {
                    p.run_segmented(seg, chain, bufs, ws_bufs.len(), scratch, self.parallel);
                } else {
                    for stage in &p.stages {
                        p.run_stage(stage, chain, bufs, ws_bufs.len(), scratch, self.parallel);
                    }
                }

                // Copy gradients into the workspace-owned result buffers.
                for (i, loc) in p.outputs.iter().enumerate() {
                    let src: &Vector<S> = match loc {
                        Loc::Seed => chain.seed(),
                        Loc::Buf(j) => match &ws_bufs[*j] {
                            WorkBuf::Vec(v) => v,
                            WorkBuf::Mat(_) => unreachable!("output buffer is a matrix"),
                        },
                        Loc::Jacobian(_) => unreachable!("output is a Jacobian"),
                    };
                    workspace.result.grads_mut()[i]
                        .as_mut_slice()
                        .copy_from_slice(src.as_slice());
                }
            }
            (Program::Diagonal(d), WsBody::Diagonal(planes)) => {
                let jacobians = chain.jacobians();
                d.execute(
                    chain.seed().as_slice(),
                    |p| match &jacobians[p] {
                        ScanElement::Sparse(m) => m.data(),
                        other => unreachable!("diagonal plan operand is {other}"),
                    },
                    planes,
                    self.parallel,
                    workspace.result.grads_mut(),
                );
            }
            // The token identity check above makes a kind mismatch
            // impossible: a workspace's body is built from its plan's
            // program.
            _ => unreachable!("workspace body does not match the plan's program kind"),
        }
        &workspace.result
    }

    /// Whether `chain` has exactly the structure this plan was built from:
    /// same length, seed width, and per-layer sparsity patterns (`Arc`
    /// pointer fast path, content compare otherwise). Allocation-free.
    pub fn matches<S: Scalar>(&self, chain: &JacobianChain<S>) -> bool {
        chain_matches_shape(chain, self.seed_len, &self.input_patterns)
    }

    /// Validates chain length and operand shapes against the plan; debug
    /// builds compare the full patterns (with an `Arc` pointer fast path),
    /// so a wrong-pattern operand of the right shape cannot slip through.
    fn check_chain<S: Scalar>(&self, chain: &JacobianChain<S>) {
        assert_eq!(
            chain.num_layers() + 1,
            self.schedule.len(),
            "PlannedScan: chain length does not match the plan"
        );
        assert_eq!(
            chain.seed().len(),
            self.seed_len,
            "PlannedScan: seed length does not match the plan"
        );
        for (i, jt) in chain.jacobians().iter().enumerate() {
            let expected = &self.input_patterns[i];
            match jt {
                ScanElement::Sparse(m) => {
                    assert_eq!(
                        m.shape(),
                        expected.shape(),
                        "PlannedScan: Jacobian {i} shape does not match the plan"
                    );
                    debug_assert!(
                        Arc::ptr_eq(m.pattern_ref(), expected) || *m.pattern_ref() == *expected,
                        "PlannedScan: Jacobian {i} pattern does not match the plan"
                    );
                }
                other => panic!("PlannedScan: chain must be all-CSR, found {other}"),
            }
        }
    }
}

impl CsrProgram {
    /// The original whole-scan symbolic compilation: simulates the schedule
    /// over the chain's patterns, hoisting every matrix–matrix combine into
    /// a [`SymbolicProduct`] and resolving identities at plan time.
    fn compile(
        schedule: &ScanSchedule,
        input_patterns: &[Arc<SparsityPattern>],
        seed_len: usize,
        kernel: KernelMode,
    ) -> Self {
        let n = input_patterns.len();

        // Scan-array layout (Equation 5): [seed, J_n^T, …, J_1^T].
        let mut slots: Vec<Sim> = Vec::with_capacity(n + 1);
        slots.push(Sim::Vec {
            len: seed_len,
            loc: Loc::Seed,
        });
        for p in (0..n).rev() {
            slots.push(Sim::Mat {
                pat: Arc::clone(&input_patterns[p]),
                loc: Loc::Jacobian(p),
            });
        }

        let mut compiler = Compiler {
            kernel,
            ..Compiler::default()
        };

        // Up-sweep: a[r] ← a[l] ⊙ a[r] = a[r] · a[l]. Every pair lies
        // within one schedule block (pinned in `bppsa-scan`), so the
        // emitted instruction is attributed to the block of its written
        // position `r` — the basis for segment slicing.
        for level in schedule.up_levels() {
            let mut stage = compiler.open_stage(true, PhaseKind::UpSweep);
            for &Pair { l, r } in level {
                let before = stage.instrs.len();
                let folded = compiler.combine(&mut stage, &slots[l], &slots[r]);
                slots[r] = folded;
                if stage.instrs.len() > before {
                    stage.blocks.push(schedule.block_of(r));
                }
            }
            compiler.push_stage(stage);
        }

        // Middle: serial exclusive scan over block roots.
        {
            let mut stage = compiler.open_stage(false, PhaseKind::Middle);
            let mut running = Sim::Identity;
            for &root in schedule.block_roots() {
                let before = stage.instrs.len();
                let old = std::mem::replace(&mut slots[root], Sim::Identity);
                let next = compiler.combine(&mut stage, &running, &old);
                slots[root] = std::mem::replace(&mut running, next);
                if stage.instrs.len() > before {
                    stage.blocks.push(schedule.block_of(root));
                }
            }
            compiler.push_stage(stage);
        }

        // Down-sweep: t ← a[l]; a[l] ← a[r]; a[r] ← a[r] ⊙ t. Identity
        // combines emit nothing; emitted instructions again belong to the
        // block of the written position `r` (same-block invariant).
        for level in schedule.down_levels() {
            let mut stage = compiler.open_stage(true, PhaseKind::DownSweep);
            for &Pair { l, r } in level {
                let before = stage.instrs.len();
                let t = std::mem::replace(&mut slots[l], Sim::Identity);
                let r_val = std::mem::replace(&mut slots[r], Sim::Identity);
                let folded = compiler.combine(&mut stage, &r_val, &t);
                slots[l] = r_val;
                slots[r] = folded;
                if stage.instrs.len() > before {
                    stage.blocks.push(schedule.block_of(r));
                }
            }
            compiler.push_stage(stage);
        }

        // Post-scan array must be [I, ∇x_n, …, ∇x_1]; record where each
        // gradient ended up: g[i] = slot[n − i].
        assert!(
            matches!(slots.first(), Some(Sim::Identity) | None),
            "planned scan must leave the identity at position 0"
        );
        let outputs: Vec<Loc> = (0..n)
            .map(|i| match &slots[n - i] {
                Sim::Vec { loc, .. } => *loc,
                other => panic!("planned scan slot {} is not a vector: {other:?}", n - i),
            })
            .collect();

        Self {
            buffers: compiler.buffers,
            spgemm_plans: compiler.plans,
            stages: compiler.stages,
            outputs,
            spgemm_flops: compiler.spgemm_flops,
        }
    }

    /// Runs one stage, choosing serial / instruction-parallel / row-parallel
    /// execution from the stage's planned FLOPs.
    fn run_stage<S: Scalar>(
        &self,
        stage: &Stage,
        chain: &JacobianChain<S>,
        bufs: *mut WorkBuf<S>,
        bufs_len: usize,
        scratch: *mut KernelScratch<S>,
        parallel: bool,
    ) {
        // A stage dominated by one heavy combine gains more from
        // row-parallelism inside that combine (the serial branch below)
        // than from a 2-way instruction fan-out that strands the heavy
        // product on a single worker.
        let skewed = stage.max_instr_flops >= ROW_PARALLEL_MIN_FLOPS
            && 2 * stage.max_instr_flops >= stage.flops;
        let instr_parallel = parallel
            && stage.parallel
            && !skewed
            && stage.instrs.len() >= 2
            && stage.flops >= STAGE_PARALLEL_MIN_FLOPS
            && stage.flops / stage.instrs.len() as u64 >= TASK_MIN_FLOPS;
        if instr_parallel {
            let bufs = SendPtr(bufs);
            let scratch = SendPtr(scratch);
            global_pool().run_indexed(stage.instrs.len(), &|i| {
                let bufs: SendPtr<WorkBuf<S>> = bufs;
                let scratch: SendPtr<KernelScratch<S>> = scratch;
                // SAFETY: instructions within a stage write pairwise-distinct
                // single-assignment buffers and read only buffers written in
                // earlier stages (schedule disjointness + SSA construction),
                // so no two tasks alias a destination; every Spgemm
                // instruction references a unique plan index, so per-plan
                // scratches are exclusively owned too; the pool barrier
                // orders the writes against later stages.
                unsafe {
                    self.exec_instr(&stage.instrs[i], chain, bufs.0, bufs_len, scratch.0, false)
                };
            });
        } else {
            for instr in &stage.instrs {
                // SAFETY: single-threaded here; aliasing argument as above.
                unsafe { self.exec_instr(instr, chain, bufs, bufs_len, scratch, parallel) };
            }
        }
    }

    /// Runs the compiled program segment-parallel: each segment's up-sweep
    /// slices execute concurrently on the pool (one driver task per
    /// segment, heavy slices fanning out further across that segment's
    /// carved worker group), the middle runs serially on the caller, then
    /// the down-sweep slices execute concurrently again.
    ///
    /// Exactness: this runs the *same instruction multiset* as the
    /// unsegmented stage loop. Up/down pairs never cross block boundaries
    /// (pinned in `bppsa-scan`), segments own disjoint contiguous block
    /// runs, every instruction writes a fresh single-assignment buffer, and
    /// the two `run_indexed` barriers order each phase against the serial
    /// middle — so no instruction can observe an operand in a different
    /// state than under the serial order, and results are bit-for-bit
    /// identical.
    fn run_segmented<S: Scalar>(
        &self,
        seg: &SegmentedPlan,
        chain: &JacobianChain<S>,
        bufs: *mut WorkBuf<S>,
        bufs_len: usize,
        scratch: *mut KernelScratch<S>,
        parallel: bool,
    ) {
        let k = seg.up.len();
        if parallel {
            let pool = global_pool();
            let size = pool.size();
            let bufs = SendPtr(bufs);
            let scratch = SendPtr(scratch);
            let run_phase = |slices_per_seg: &[Vec<SegmentSlice>]| {
                pool.run_indexed(k, &|g| {
                    let bufs: SendPtr<WorkBuf<S>> = bufs;
                    let scratch: SendPtr<KernelScratch<S>> = scratch;
                    // Contiguous worker carve, computed arithmetically so
                    // the steady state allocates nothing. Empty groups
                    // (more segments than workers) degrade to driver-only
                    // inline execution.
                    let group = pool.group(g * size / k, (g + 1) * size / k);
                    // SAFETY: segments own disjoint blocks; see the method
                    // docs for the aliasing argument. The per-plan scratch
                    // exclusivity of `exec_instr` carries over unchanged
                    // (plan indices stay unique per instruction).
                    unsafe {
                        self.run_slices(
                            &slices_per_seg[g],
                            group,
                            chain,
                            bufs.0,
                            bufs_len,
                            scratch.0,
                        )
                    };
                });
            };
            run_phase(&seg.up);
            if let Some(mid) = seg.middle {
                // The middle is the one inherently serial stitch: a short
                // chain of SpMVs threading the running prefix through every
                // block root, cross-segment by construction.
                self.run_stage(&self.stages[mid], chain, bufs.0, bufs_len, scratch.0, false);
            }
            run_phase(&seg.down);
        } else {
            // Serial executor: loop the segments in order. Exercises the
            // identical slice decomposition (same instruction multiset,
            // same per-instruction arguments), deterministically.
            for g in 0..k {
                for slice in &seg.up[g] {
                    let stage = &self.stages[slice.stage];
                    for instr in &stage.instrs[slice.lo..slice.hi] {
                        // SAFETY: single-threaded; SSA aliasing argument as
                        // in `run_stage`.
                        unsafe { self.exec_instr(instr, chain, bufs, bufs_len, scratch, false) };
                    }
                }
            }
            if let Some(mid) = seg.middle {
                self.run_stage(&self.stages[mid], chain, bufs, bufs_len, scratch, false);
            }
            for g in 0..k {
                for slice in &seg.down[g] {
                    let stage = &self.stages[slice.stage];
                    for instr in &stage.instrs[slice.lo..slice.hi] {
                        // SAFETY: as above.
                        unsafe { self.exec_instr(instr, chain, bufs, bufs_len, scratch, false) };
                    }
                }
            }
        }
    }

    /// Runs one segment's slices in stage order on the segment's driver
    /// task, fanning a heavy slice out across the segment's worker group
    /// (instruction-level, priced like `run_stage`; row-parallelism stays
    /// off — the pool is already carved).
    ///
    /// # Safety
    ///
    /// As `exec_instr`, plus: no other segment may concurrently touch this
    /// segment's blocks (guaranteed by the disjoint block partition and the
    /// same-block pair invariant).
    unsafe fn run_slices<S: Scalar>(
        &self,
        slices: &[SegmentSlice],
        group: WorkerGroup<'_>,
        chain: &JacobianChain<S>,
        bufs: *mut WorkBuf<S>,
        bufs_len: usize,
        scratch: *mut KernelScratch<S>,
    ) {
        for slice in slices {
            let stage = &self.stages[slice.stage];
            let count = slice.hi - slice.lo;
            let flops: u64 = stage.instr_flops[slice.lo..slice.hi].iter().sum();
            let fan_out = stage.parallel
                && group.workers() > 0
                && count >= 2
                && flops >= STAGE_PARALLEL_MIN_FLOPS
                && flops / count as u64 >= TASK_MIN_FLOPS;
            if fan_out {
                let bufs = SendPtr(bufs);
                let scratch = SendPtr(scratch);
                group.run_indexed(count, &|i| {
                    let bufs: SendPtr<WorkBuf<S>> = bufs;
                    let scratch: SendPtr<KernelScratch<S>> = scratch;
                    // SAFETY: within-stage instructions write distinct SSA
                    // buffers (as in `run_stage`); the nested publish lands
                    // on a free pool header (or runs inline), and the group
                    // barrier orders the writes against the next slice.
                    unsafe {
                        self.exec_instr(
                            &stage.instrs[slice.lo + i],
                            chain,
                            bufs.0,
                            bufs_len,
                            scratch.0,
                            false,
                        )
                    };
                });
            } else {
                for instr in &stage.instrs[slice.lo..slice.hi] {
                    // SAFETY: caller contract; instructions of one segment
                    // run here sequentially.
                    unsafe { self.exec_instr(instr, chain, bufs, bufs_len, scratch, false) };
                }
            }
        }
    }

    /// Executes one instruction. `row_parallel` permits a heavy SpGEMM to
    /// fan its numeric phase out across the pool by row chunks.
    ///
    /// # Safety
    ///
    /// `bufs` must point to `bufs_len` initialized buffers matching the
    /// plan's specs, the instruction's `dst` must not be concurrently
    /// accessed, and its source buffers must not be concurrently written.
    /// `scratch` must point to one [`KernelScratch`] per entry of
    /// `spgemm_plans` (in order), and no other instruction referencing the
    /// same plan index may run concurrently (guaranteed: each `Spgemm`
    /// instruction holds a unique plan index by construction).
    unsafe fn exec_instr<S: Scalar>(
        &self,
        instr: &Instr,
        chain: &JacobianChain<S>,
        bufs: *mut WorkBuf<S>,
        bufs_len: usize,
        scratch: *mut KernelScratch<S>,
        row_parallel: bool,
    ) {
        match instr {
            Instr::Spmv { mat, vec, dst } => {
                let m = resolve_mat(*mat, chain, bufs, bufs_len);
                let v = resolve_vec(*vec, chain, bufs, bufs_len);
                debug_assert!(*dst < bufs_len);
                match &mut *bufs.add(*dst) {
                    WorkBuf::Vec(out) => m.spmv_into(v, out),
                    WorkBuf::Mat(_) => unreachable!("spmv destination is a matrix buffer"),
                }
            }
            Instr::Spgemm {
                plan,
                lhs,
                rhs,
                dst,
            } => {
                let p = &self.spgemm_plans[*plan];
                let a = resolve_mat(*lhs, chain, bufs, bufs_len);
                let b = resolve_mat(*rhs, chain, bufs, bufs_len);
                debug_assert!(*dst < bufs_len);
                let out = match &mut *bufs.add(*dst) {
                    WorkBuf::Mat(out) => out,
                    WorkBuf::Vec(_) => unreachable!("spgemm destination is a vector buffer"),
                };
                // SAFETY (caller contract): `plan` indexes are unique per
                // instruction, so this scratch is exclusively ours.
                let scratch = &mut *scratch.add(*plan);
                if row_parallel && p.execute_flops() >= ROW_PARALLEL_MIN_FLOPS {
                    p.execute_into_parallel_with(a, b, out, global_pool(), scratch);
                } else {
                    p.execute_into_with(a, b, out, scratch);
                }
            }
        }
    }
}

/// Builds the segmentation of a compiled CSR program: clamps `k` to the
/// schedule's block count, places the cuts with
/// [`balanced_cuts`] (planned per-block FLOPs as weights, preferring
/// naturally narrow interfaces), and slices every up/down stage's
/// instruction list per segment by `partition_point` over the recorded
/// block attribution. Returns `None` when fewer than two segments survive
/// the clamp (single-block schedules — e.g. full Blelloch — cannot split).
fn build_segmentation(
    p: &CsrProgram,
    schedule: &ScanSchedule,
    input_patterns: &[Arc<SparsityPattern>],
    seed_len: usize,
    k: usize,
) -> Option<SegmentedPlan> {
    let roots = schedule.block_roots();
    let num_blocks = roots.len();
    let k = k.min(num_blocks);
    if k < 2 {
        return None;
    }

    // Per-block planned cost over the parallel phases (the middle is
    // caller-serial regardless of where the cuts land).
    let mut weights = vec![0u64; num_blocks];
    for stage in &p.stages {
        if matches!(stage.phase, PhaseKind::Middle) {
            continue;
        }
        for (block, flops) in stage.blocks.iter().zip(&stage.instr_flops) {
            weights[*block] += flops;
        }
    }

    // Interface width at the boundary after block `b`: the row count of the
    // fold block `b` hands the middle — the rows of its root slot's operand
    // (slot `j ≥ 1` holds `J_{n−j+1}ᵀ`, i.e. `input_patterns[n − j]`).
    let n = input_patterns.len();
    let interfaces: Vec<usize> = roots[..num_blocks - 1]
        .iter()
        .map(|&root| {
            if root == 0 {
                seed_len
            } else {
                input_patterns[n - root].rows()
            }
        })
        .collect();

    let cuts = balanced_cuts(&weights, &interfaces, k);
    let segment_blocks = segments_from_cuts(&cuts, num_blocks);
    let interface_widths: Vec<usize> = cuts.iter().map(|&c| interfaces[c - 1]).collect();

    let mut up: Vec<Vec<SegmentSlice>> = vec![Vec::new(); k];
    let mut down: Vec<Vec<SegmentSlice>> = vec![Vec::new(); k];
    let mut middle = None;
    for (s, stage) in p.stages.iter().enumerate() {
        let per_segment = match stage.phase {
            PhaseKind::UpSweep => &mut up,
            PhaseKind::DownSweep => &mut down,
            PhaseKind::Middle => {
                middle = Some(s);
                continue;
            }
        };
        debug_assert_eq!(stage.blocks.len(), stage.instrs.len());
        for (g, blocks) in segment_blocks.iter().enumerate() {
            let lo = stage.blocks.partition_point(|&b| b < blocks.start);
            let hi = stage.blocks.partition_point(|&b| b < blocks.end);
            if hi > lo {
                per_segment[g].push(SegmentSlice { stage: s, lo, hi });
            }
        }
    }

    Some(SegmentedPlan::new(
        up,
        down,
        middle,
        segment_blocks,
        interface_widths,
    ))
}

/// Whether `chain` has exactly the given structure: a `seed_len`-wide seed
/// gradient and one all-CSR layer per entry of `patterns`, in layer order
/// (`Arc`-pointer fast path, content compare otherwise). Allocation-free.
///
/// This is *the* shape predicate of the workspace: [`PlannedScan::matches`]
/// and the `bppsa-serve` router's lane shape keys both delegate here, so
/// plan compatibility and request routing cannot drift apart.
pub fn chain_matches_shape<S: Scalar>(
    chain: &JacobianChain<S>,
    seed_len: usize,
    patterns: &[Arc<SparsityPattern>],
) -> bool {
    chain.num_layers() == patterns.len()
        && chain.seed().len() == seed_len
        && chain
            .jacobians()
            .iter()
            .zip(patterns)
            .all(|(jt, expected)| match jt {
                ScanElement::Sparse(m) => {
                    Arc::ptr_eq(m.pattern_ref(), expected) || *m.pattern_ref() == *expected
                }
                _ => false,
            })
}

/// A self-managing plan/workspace pair for training loops: call
/// [`PlannedBackwardCache::backward`] every iteration and it re-plans only
/// when the chain's structure actually changes (first call, shape change,
/// pruning that alters a pattern, different options). In the steady state it
/// is a zero-allocation [`PlannedScan::execute_with`].
///
/// # Examples
///
/// ```
/// use bppsa_core::{BppsaOptions, JacobianChain, PlannedBackwardCache, ScanElement};
/// use bppsa_sparse::Csr;
/// use bppsa_tensor::Vector;
///
/// let mut cache = PlannedBackwardCache::<f64>::new();
/// for step in 0..3 {
///     let mut chain = JacobianChain::new(Vector::from_vec(vec![1.0, step as f64]));
///     chain.push(ScanElement::Sparse(Csr::from_diagonal(&[2.0, 0.5 * step as f64])));
///     let grads = cache.backward(&chain, BppsaOptions::serial());
///     assert_eq!(grads.grads().len(), 1);
/// }
/// assert_eq!(cache.plans_built(), 1); // same structure → planned once
/// ```
#[derive(Debug, Default)]
pub struct PlannedBackwardCache<S> {
    entries: Mru<CacheEntry<S>>,
    plans_built: usize,
}

/// How many distinct chain structures the plan cache (and the chain cache
/// layered on it, e.g. `FusedPlannedState` in `bppsa-models`) retain.
/// Training loops see at most a handful of shapes (the full mini-batch
/// shape plus the epoch-end remainder); the least recently used entry is
/// evicted beyond this.
pub const PLAN_CACHE_CAPACITY: usize = 8;

/// A tiny bounded most-recently-used store: linear predicate lookup, hit
/// moves the entry to the back, miss inserts (evicting the front when
/// full). Shared by [`PlannedBackwardCache`] and the chain cache in
/// `bppsa-models` so the recency/eviction behavior of plan and chain
/// entries cannot drift apart.
#[derive(Debug)]
pub struct Mru<T> {
    entries: Vec<T>,
    capacity: usize,
}

impl<T> Mru<T> {
    /// An empty store evicting beyond `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "Mru: capacity must be non-zero");
        Self {
            entries: Vec::new(),
            capacity,
        }
    }

    /// Finds the entry matching `pred` (moving it to the back) or inserts
    /// `make()` (evicting the least recently used entry when full).
    /// Returns the entry and whether it was just inserted.
    pub fn find_or_insert_with(
        &mut self,
        pred: impl Fn(&T) -> bool,
        make: impl FnOnce() -> T,
    ) -> (&mut T, bool) {
        let (entry, inserted, _evicted) = self.find_or_insert_with_evicted(pred, make);
        (entry, inserted)
    }

    /// [`Mru::find_or_insert_with`] that additionally hands back the entry
    /// evicted to make room (`None` on a hit, or when still under
    /// capacity), so callers owning live resources — threads, queues,
    /// serving lanes — can shut the evicted entry down instead of silently
    /// dropping it.
    pub fn find_or_insert_with_evicted(
        &mut self,
        pred: impl Fn(&T) -> bool,
        make: impl FnOnce() -> T,
    ) -> (&mut T, bool, Option<T>) {
        let (inserted, evicted) = match self.entries.iter().position(&pred) {
            Some(hit) => {
                let entry = self.entries.remove(hit);
                self.entries.push(entry);
                (false, None)
            }
            None => {
                let evicted = if self.entries.len() >= self.capacity {
                    Some(self.entries.remove(0))
                } else {
                    None
                };
                self.entries.push(make());
                (true, evicted)
            }
        };
        (
            self.entries.last_mut().expect("entry present"),
            inserted,
            evicted,
        )
    }

    /// Finds the entry matching `pred`, moving it to the back (most
    /// recently used) — a hit-only [`Mru::find_or_insert_with`], for
    /// callers whose insertion path must run (fallible or panicky
    /// construction) *before* any entry is evicted.
    pub fn find(&mut self, pred: impl Fn(&T) -> bool) -> Option<&mut T> {
        let hit = self.entries.iter().position(pred)?;
        let entry = self.entries.remove(hit);
        self.entries.push(entry);
        self.entries.last_mut()
    }

    /// Removes and yields every entry, least recently used first (for
    /// owners that must shut stored resources down, e.g. at service
    /// shutdown).
    pub fn drain(&mut self) -> std::vec::Drain<'_, T> {
        self.entries.drain(..)
    }

    /// Removes and returns every entry matching `pred` (LRU order among
    /// the removed; recency order of the survivors preserved). Returns an
    /// empty, non-allocated `Vec` when nothing matches, so callers may run
    /// it on hot paths as a guard against dead entries (e.g. a serving
    /// lane whose background warm-up failed and that must not keep
    /// matching requests).
    pub fn extract(&mut self, pred: impl Fn(&T) -> bool) -> Vec<T> {
        let mut removed = Vec::new();
        let mut i = 0;
        while i < self.entries.len() {
            if pred(&self.entries[i]) {
                removed.push(self.entries.remove(i));
            } else {
                i += 1;
            }
        }
        removed
    }

    /// Iterates the entries, least recently used first, without touching
    /// recency order (for observers — supervisors, metrics scrapers — that
    /// must not perturb eviction behavior).
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.entries.iter()
    }

    /// Removes and returns the least recently used entry matching `pred`
    /// (`None` when nothing matches), preserving the recency order of the
    /// survivors. This is the voluntary-eviction entry point: callers
    /// under resource pressure shed the coldest evictable entry instead
    /// of overcommitting.
    pub fn pop_lru(&mut self, pred: impl Fn(&T) -> bool) -> Option<T> {
        let hit = self.entries.iter().position(pred)?;
        Some(self.entries.remove(hit))
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The most recently used entry, if any.
    pub fn last(&self) -> Option<&T> {
        self.entries.last()
    }
}

impl<T> Default for Mru<T> {
    fn default() -> Self {
        Self::new(PLAN_CACHE_CAPACITY)
    }
}

#[derive(Debug)]
struct CacheEntry<S> {
    opts: BppsaOptions,
    plan: PlannedScan,
    workspace: ScanWorkspace<S>,
}

impl<S: Scalar> PlannedBackwardCache<S> {
    /// An empty cache (plans on first use).
    pub fn new() -> Self {
        Self {
            entries: Mru::new(PLAN_CACHE_CAPACITY),
            plans_built: 0,
        }
    }

    /// Runs the planned backward pass for `chain`, re-planning first if no
    /// cached plan matches the chain's structure and options.
    ///
    /// Up to [`PLAN_CACHE_CAPACITY`] distinct structures are retained, so a
    /// training loop that alternates shapes — e.g. full mini-batches plus a
    /// smaller epoch-end remainder batch — still plans each shape exactly
    /// once instead of thrashing.
    pub fn backward(&mut self, chain: &JacobianChain<S>, opts: BppsaOptions) -> &BackwardResult<S> {
        let (entry, inserted) = self.entries.find_or_insert_with(
            |e| e.opts == opts && e.plan.matches(chain),
            || {
                let plan = PlannedScan::plan(chain, opts);
                let workspace = plan.workspace();
                CacheEntry {
                    opts,
                    plan,
                    workspace,
                }
            },
        );
        if inserted {
            self.plans_built += 1;
        }
        let CacheEntry {
            plan, workspace, ..
        } = entry;
        plan.execute_with(chain, workspace)
    }

    /// How many times a plan has been built — the number of distinct chain
    /// structures seen (modulo eviction), not the iteration count.
    pub fn plans_built(&self) -> usize {
        self.plans_built
    }

    /// Number of currently cached plan/workspace pairs.
    pub fn cached_plans(&self) -> usize {
        self.entries.len()
    }

    /// The most recently used plan, if any (for FLOP/workspace accounting).
    pub fn plan(&self) -> Option<&PlannedScan> {
        self.entries.last().map(|e| &e.plan)
    }
}

/// Plan-time program builder state.
#[derive(Default)]
struct Compiler {
    buffers: Vec<BufferSpec>,
    plans: Vec<SymbolicProduct>,
    stages: Vec<Stage>,
    spgemm_flops: u64,
    /// How each matrix-fold combine resolves its numeric kernel.
    kernel: KernelMode,
}

impl Compiler {
    fn open_stage(&self, parallel: bool, phase: PhaseKind) -> Stage {
        Stage {
            instrs: Vec::new(),
            parallel,
            flops: 0,
            max_instr_flops: 0,
            instr_flops: Vec::new(),
            blocks: Vec::new(),
            phase,
        }
    }

    fn push_stage(&mut self, stage: Stage) {
        if !stage.instrs.is_empty() {
            self.stages.push(stage);
        }
    }

    fn alloc(&mut self, spec: BufferSpec) -> usize {
        self.buffers.push(spec);
        self.buffers.len() - 1
    }

    /// Simulates `a ⊙ b = b·a` at the pattern level, emitting the numeric
    /// instruction (if any) into `stage` and returning the folded value.
    fn combine(&mut self, stage: &mut Stage, a: &Sim, b: &Sim) -> Sim {
        match (a, b) {
            // Identity short-circuits are resolved now and cost nothing at
            // run time.
            (Sim::Identity, x) | (x, Sim::Identity) => x.clone(),
            // Gradient-vector fold: ⊙ = SpMV through the matrix.
            (Sim::Vec { len, loc: vec_loc }, Sim::Mat { pat, loc: mat_loc }) => {
                assert_eq!(pat.cols(), *len, "plan: spmv dimension mismatch");
                let dst = self.alloc(BufferSpec::Vector(pat.rows()));
                let flops = 2 * pat.nnz() as u64;
                stage.flops += flops;
                stage.max_instr_flops = stage.max_instr_flops.max(flops);
                stage.instr_flops.push(flops);
                stage.instrs.push(Instr::Spmv {
                    mat: *mat_loc,
                    vec: *vec_loc,
                    dst,
                });
                Sim::Vec {
                    len: pat.rows(),
                    loc: Loc::Buf(dst),
                }
            }
            // Matrix fold: a ⊙ b = b·a through a hoisted symbolic product.
            (Sim::Mat { pat: pa, loc: la }, Sim::Mat { pat: pb, loc: lb }) => {
                let product = SymbolicProduct::plan_with_mode(pb, pa, self.kernel);
                let out_pat = Arc::clone(product.out_pattern());
                // Accounting keeps the kernel-independent *structural* FLOPs
                // (the mathematical work); stage pricing uses the FLOPs the
                // resolved kernel actually executes, so fan-out decisions
                // see the dense panel kernel's true cost.
                self.spgemm_flops += product.flops();
                let flops = product.execute_flops();
                stage.flops += flops;
                stage.max_instr_flops = stage.max_instr_flops.max(flops);
                stage.instr_flops.push(flops);
                let plan = self.plans.len();
                self.plans.push(product);
                let dst = self.alloc(BufferSpec::Matrix(Arc::clone(&out_pat)));
                stage.instrs.push(Instr::Spgemm {
                    plan,
                    lhs: *lb,
                    rhs: *la,
                    dst,
                });
                Sim::Mat {
                    pat: out_pat,
                    loc: Loc::Buf(dst),
                }
            }
            (Sim::Mat { .. }, Sim::Vec { .. }) | (Sim::Vec { .. }, Sim::Vec { .. }) => {
                unreachable!("plan: a vector may only appear as the left operand of ⊙")
            }
        }
    }
}

/// Resolves a matrix operand location.
///
/// # Safety
///
/// `bufs` validity and non-aliasing as in `exec_instr`.
unsafe fn resolve_mat<S: Scalar>(
    loc: Loc,
    chain: &JacobianChain<S>,
    bufs: *const WorkBuf<S>,
    bufs_len: usize,
) -> &Csr<S> {
    match loc {
        Loc::Jacobian(i) => match &chain.jacobians()[i] {
            ScanElement::Sparse(m) => m,
            other => unreachable!("planned matrix operand is {other}"),
        },
        Loc::Buf(j) => {
            debug_assert!(j < bufs_len);
            match &*bufs.add(j) {
                WorkBuf::Mat(m) => m,
                WorkBuf::Vec(_) => unreachable!("matrix operand resolves to a vector buffer"),
            }
        }
        Loc::Seed => unreachable!("matrix operand resolves to the seed"),
    }
}

/// Resolves a vector operand location.
///
/// # Safety
///
/// `bufs` validity and non-aliasing as in `exec_instr`.
unsafe fn resolve_vec<S: Scalar>(
    loc: Loc,
    chain: &JacobianChain<S>,
    bufs: *const WorkBuf<S>,
    bufs_len: usize,
) -> &Vector<S> {
    match loc {
        Loc::Seed => chain.seed(),
        Loc::Buf(j) => {
            debug_assert!(j < bufs_len);
            match &*bufs.add(j) {
                WorkBuf::Vec(v) => v,
                WorkBuf::Mat(_) => unreachable!("vector operand resolves to a matrix buffer"),
            }
        }
        Loc::Jacobian(_) => unreachable!("vector operand resolves to a Jacobian"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backward::{bppsa_backward, linear_backward};
    use bppsa_tensor::init::{seeded_rng, uniform_vector};
    use rand::Rng;

    /// Random sparse chain with ~40% density and varying widths.
    fn sparse_chain(n: usize, seed: u64) -> JacobianChain<f64> {
        let mut rng = seeded_rng(seed);
        let dims: Vec<usize> = (0..=n).map(|i| 3 + (i * 2 + seed as usize) % 4).collect();
        let mut chain = JacobianChain::new(uniform_vector(&mut rng, dims[n], 1.0));
        for i in 0..n {
            let dense = bppsa_tensor::Matrix::from_fn(dims[i], dims[i + 1], |_, _| {
                if rng.random_range(0.0..1.0) < 0.4 {
                    rng.random_range(-1.0..1.0)
                } else {
                    0.0
                }
            });
            chain.push(ScanElement::Sparse(Csr::from_dense(&dense)));
        }
        chain
    }

    #[test]
    fn planned_matches_unplanned_various_lengths() {
        for n in [1usize, 2, 3, 7, 8, 15, 33] {
            let chain = sparse_chain(n, n as u64);
            let plan = PlannedScan::plan(&chain, BppsaOptions::serial());
            let planned = plan.execute(&chain);
            let reference = bppsa_backward(&chain, BppsaOptions::serial());
            let diff = planned.max_abs_diff(&reference);
            assert!(diff < 1e-12, "n={n}: diff {diff}");
        }
    }

    #[test]
    fn planned_hybrid_matches_linear_reference() {
        let chain = sparse_chain(21, 4);
        let reference = linear_backward(&chain);
        for k in 0..5 {
            let plan = PlannedScan::plan(&chain, BppsaOptions::serial().hybrid(k));
            let diff = plan.execute(&chain).max_abs_diff(&reference);
            assert!(diff < 1e-10, "k={k}: diff {diff}");
        }
    }

    #[test]
    fn workspace_reuse_matches_fresh_execution() {
        let chain = sparse_chain(17, 23);
        let plan = PlannedScan::plan(&chain, BppsaOptions::serial());
        let mut ws = plan.workspace::<f64>();
        let reference = bppsa_backward(&chain, BppsaOptions::serial());
        for round in 0..4 {
            let out = plan.execute_with(&chain, &mut ws);
            let diff = out.max_abs_diff(&reference);
            assert!(diff < 1e-12, "round {round}: diff {diff}");
        }
    }

    #[test]
    fn workspace_reuse_tracks_value_changes() {
        // The whole point: same patterns, new values, same plan + workspace.
        let chain = sparse_chain(12, 9);
        let plan = PlannedScan::plan(&chain, BppsaOptions::serial());
        let mut ws = plan.workspace::<f64>();
        let _ = plan.execute_with(&chain, &mut ws);
        let mut chain2 = JacobianChain::new(chain.seed().scaled(2.0));
        for jt in chain.jacobians() {
            if let ScanElement::Sparse(m) = jt {
                chain2.push(ScanElement::Sparse(m.map_values(|v| v * 0.5 - 0.1)));
            }
        }
        let planned = plan.execute_with(&chain2, &mut ws).clone();
        let reference = bppsa_backward(&chain2, BppsaOptions::serial());
        assert!(planned.max_abs_diff(&reference) < 1e-12);
    }

    #[test]
    fn pooled_execution_matches_serial() {
        let chain = sparse_chain(40, 11);
        let serial_plan = PlannedScan::plan(&chain, BppsaOptions::serial());
        let pooled_plan = PlannedScan::plan(&chain, BppsaOptions::pooled());
        let diff = serial_plan
            .execute(&chain)
            .max_abs_diff(&pooled_plan.execute(&chain));
        assert!(diff < 1e-12);
    }

    /// The generic program of a plan (these chains are never all-diagonal).
    fn csr_program(plan: &PlannedScan) -> &CsrProgram {
        match &plan.program {
            Program::Csr(p) => p,
            Program::Diagonal(_) => panic!("expected a CSR program"),
        }
    }

    #[test]
    fn plan_accounting_is_consistent() {
        let chain = sparse_chain(15, 13);
        let plan = PlannedScan::plan(&chain, BppsaOptions::serial());
        let schedule = plan.schedule();
        let prog = csr_program(&plan);
        // Up-sweep: exactly one instruction per schedule pair (identities
        // never appear there), and matrix products occur *only* there.
        let up_pairs: usize = schedule.up_levels().iter().map(Vec::len).sum();
        let up_instrs: usize = prog
            .stages
            .iter()
            .filter(|st| matches!(st.phase, PhaseKind::UpSweep))
            .map(|st| st.instrs.len())
            .sum();
        assert_eq!(up_instrs, up_pairs);
        let up_products: usize = prog
            .stages
            .iter()
            .filter(|st| matches!(st.phase, PhaseKind::UpSweep))
            .flat_map(|st| &st.instrs)
            .filter(|i| matches!(i, Instr::Spgemm { .. }))
            .count();
        assert_eq!(up_products, plan.planned_products());
        // Every instruction writes exactly one fresh buffer (SSA).
        let total_instrs: usize = prog.stages.iter().map(|st| st.instrs.len()).sum();
        assert_eq!(total_instrs, prog.buffers.len());
        assert_eq!(total_instrs, plan.planned_products() + plan.planned_spmvs());
        assert!(plan.spgemm_flops() > 0);
        assert_eq!(plan.elementwise_flops(), 0);
        assert!(plan.diagonal_kernel().is_none());
        assert!(plan.workspace_bytes::<f64>() > 0);
        assert!(
            plan.build_time() > Duration::ZERO,
            "symbolic planning must report its wall-clock cost"
        );
    }

    #[test]
    fn diagonal_chain_takes_the_fast_path_and_matches_generic() {
        use crate::diagonal::DiagonalMode;
        let mut rng = seeded_rng(77);
        for n in [1usize, 2, 3, 7, 8, 31, 64] {
            let w = 5;
            let mut chain = JacobianChain::new(uniform_vector(&mut rng, w, 1.0));
            for _ in 0..n {
                let diag: Vec<f64> = (0..w).map(|_| rng.random_range(-1.5..1.5)).collect();
                chain.push(ScanElement::Sparse(Csr::from_diagonal(&diag)));
            }
            let fast = PlannedScan::plan(&chain, BppsaOptions::serial());
            assert_eq!(
                fast.diagonal_kernel(),
                Some(crate::diagonal::DiagonalKernel::Linear),
                "n={n}"
            );
            assert_eq!(fast.planned_products(), 0);
            assert!(fast.elementwise_flops() > 0);
            let generic = PlannedScan::plan(
                &chain,
                BppsaOptions::serial().diagonal(DiagonalMode::Disabled),
            );
            assert!(generic.diagonal_kernel().is_none());
            let diff = fast
                .execute(&chain)
                .max_abs_diff(&generic.execute(&chain))
                .abs();
            assert_eq!(diff, 0.0, "n={n}: diagonal kernel must be bit-for-bit");
        }
    }

    #[test]
    fn cache_retains_alternating_shapes() {
        // The epoch-end remainder-batch pattern: full shape, small shape,
        // full shape, … must plan each shape once, not thrash.
        let full = sparse_chain(12, 21);
        let remainder = sparse_chain(7, 22);
        let mut cache = PlannedBackwardCache::<f64>::new();
        for _ in 0..3 {
            let _ = cache.backward(&full, BppsaOptions::serial());
            let _ = cache.backward(&remainder, BppsaOptions::serial());
        }
        assert_eq!(cache.plans_built(), 2);
        assert_eq!(cache.cached_plans(), 2);
        // Results stay correct for both shapes.
        let out = cache.backward(&full, BppsaOptions::serial()).clone();
        let reference = bppsa_backward(&full, BppsaOptions::serial());
        assert!(out.max_abs_diff(&reference) < 1e-12);
    }

    #[test]
    fn mru_extract_removes_matching_entries_preserving_order() {
        let mut mru: Mru<u32> = Mru::new(4);
        for v in [1u32, 2, 3, 4] {
            let _ = mru.find_or_insert_with(|e| *e == v, || v);
        }
        let removed = mru.extract(|v| v % 2 == 0);
        assert_eq!(removed, vec![2, 4], "matching entries, LRU order");
        assert_eq!(mru.len(), 2);
        assert_eq!(mru.drain().collect::<Vec<_>>(), vec![1, 3]);

        let mut empty: Mru<u32> = Mru::new(2);
        assert!(empty.extract(|_| true).is_empty());
    }

    #[test]
    #[should_panic(expected = "all-CSR")]
    fn dense_chain_is_rejected() {
        let mut chain = JacobianChain::new(Vector::<f64>::zeros(2));
        chain.push(ScanElement::Dense(bppsa_tensor::Matrix::identity(2)));
        let _ = PlannedScan::plan(&chain, BppsaOptions::serial());
    }

    #[test]
    #[should_panic(expected = "does not match the plan")]
    fn wrong_length_chain_is_rejected() {
        let chain = sparse_chain(8, 17);
        let plan = PlannedScan::plan(&chain, BppsaOptions::serial());
        let other = sparse_chain(9, 18);
        let _ = plan.execute(&other);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "pattern does not match the plan")]
    fn wrong_pattern_same_shape_chain_is_rejected_in_debug() {
        // Same shapes, different sparsity pattern: the shape-only check of
        // the old `pattern_matches` used to accept this silently.
        let mut chain = JacobianChain::new(Vector::from_vec(vec![1.0f64, 2.0]));
        chain.push(ScanElement::Sparse(Csr::from_dense(
            &bppsa_tensor::Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]),
        )));
        let plan = PlannedScan::plan(&chain, BppsaOptions::serial());
        let mut other = JacobianChain::new(Vector::from_vec(vec![1.0f64, 2.0]));
        other.push(ScanElement::Sparse(Csr::from_dense(
            &bppsa_tensor::Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]),
        )));
        let _ = plan.execute(&other);
    }

    #[test]
    #[should_panic(expected = "different plan")]
    fn workspace_from_another_plan_is_rejected() {
        let chain = sparse_chain(6, 31);
        let plan_a = PlannedScan::plan(&chain, BppsaOptions::serial());
        let plan_b = PlannedScan::plan(&chain, BppsaOptions::serial());
        let mut ws = plan_b.workspace::<f64>();
        let _ = plan_a.execute_with(&chain, &mut ws);
    }

    #[test]
    fn segmented_serial_is_bit_identical_to_unsegmented() {
        for (n, up, k) in [
            (40usize, 3usize, 2usize),
            (40, 3, 4),
            (64, 2, 4),
            (33, 0, 3),
        ] {
            let chain = sparse_chain(n, n as u64 + 7);
            let base = BppsaOptions::serial().hybrid(up);
            let seg_plan = PlannedScan::plan(&chain, base.segmented(k));
            let ref_plan = PlannedScan::plan(&chain, base);
            assert!(
                seg_plan.segments() >= 2,
                "n={n} up={up} k={k}: expected a real segmentation"
            );
            let diff = seg_plan
                .execute(&chain)
                .max_abs_diff(&ref_plan.execute(&chain));
            assert_eq!(diff, 0.0, "n={n} up={up} k={k}: must be bit-for-bit");
        }
    }

    #[test]
    fn segmented_pooled_is_bit_identical_to_unsegmented_serial() {
        for k in [2usize, 4] {
            let chain = sparse_chain(48, 91);
            let base = BppsaOptions::serial().hybrid(3);
            let seg = PlannedScan::plan(&chain, BppsaOptions::pooled().hybrid(3).segmented(k));
            let reference = PlannedScan::plan(&chain, base);
            let mut ws = seg.workspace::<f64>();
            for round in 0..3 {
                let diff = seg
                    .execute_with(&chain, &mut ws)
                    .max_abs_diff(&reference.execute(&chain));
                assert_eq!(diff, 0.0, "k={k} round={round}: must be bit-for-bit");
            }
        }
    }

    #[test]
    fn segmentation_structure_is_consistent() {
        let chain = sparse_chain(64, 5);
        let plan = PlannedScan::plan(&chain, BppsaOptions::serial().hybrid(3).segmented(4));
        let seg = plan.segmentation().expect("segmented");
        let num_blocks = plan.schedule().block_roots().len();
        assert_eq!(seg.segments(), 4);
        assert_eq!(seg.interface_widths().len(), 3);
        // Block ranges are contiguous, disjoint, non-empty, and cover.
        let blocks = seg.segment_blocks();
        assert_eq!(blocks.first().unwrap().start, 0);
        assert_eq!(blocks.last().unwrap().end, num_blocks);
        for w in blocks.windows(2) {
            assert_eq!(w[0].end, w[1].start);
            assert!(!w[0].is_empty() && !w[1].is_empty());
        }
        // The slices partition every up/down stage's instruction list.
        let prog = csr_program(&plan);
        for (s, st) in prog.stages.iter().enumerate() {
            assert_eq!(st.blocks.len(), st.instrs.len(), "stage {s}");
            assert_eq!(st.instr_flops.len(), st.instrs.len(), "stage {s}");
            assert!(st.blocks.windows(2).all(|w| w[0] <= w[1]), "stage {s}");
            let sliced: usize = match st.phase {
                PhaseKind::Middle => continue,
                PhaseKind::UpSweep => &seg.up,
                PhaseKind::DownSweep => &seg.down,
            }
            .iter()
            .flatten()
            .filter(|sl| sl.stage == s)
            .map(|sl| sl.hi - sl.lo)
            .sum();
            assert_eq!(sliced, st.instrs.len(), "stage {s} not fully sliced");
        }
    }

    #[test]
    fn segmentation_derives_a_hybrid_schedule_when_unspecified() {
        let chain = sparse_chain(64, 3);
        let opts = BppsaOptions::serial().segmented(4);
        let plan = PlannedScan::plan(&chain, opts);
        let derived = opts.segmented_up_levels(65);
        assert_eq!(
            *plan.schedule(),
            bppsa_scan::ScanSchedule::with_up_levels(65, derived)
        );
        assert!(
            plan.schedule().block_roots().len() >= 16,
            "need ≥ 4 blocks per segment, got {}",
            plan.schedule().block_roots().len()
        );
        assert_eq!(plan.segments(), 4);
        // The equivalent unsegmented reference pins the same depth.
        let reference = PlannedScan::plan(&chain, BppsaOptions::serial().hybrid(derived));
        let diff = plan
            .execute(&chain)
            .max_abs_diff(&reference.execute(&chain));
        assert_eq!(diff, 0.0);
    }

    #[test]
    fn segmentation_clamps_to_available_blocks() {
        // An over-deep hybrid clamps to the 2-block ceiling of
        // `with_up_levels` (`ceil_log2(len) − 1`), so a 4-segment request
        // clamps down to 2 segments — and stays exact.
        let chain = sparse_chain(16, 41);
        let plan = PlannedScan::plan(&chain, BppsaOptions::serial().hybrid(64).segmented(4));
        let num_blocks = plan.schedule().block_roots().len();
        assert_eq!(num_blocks, 2);
        assert_eq!(plan.segments(), 2);
        let reference = PlannedScan::plan(&chain, BppsaOptions::serial().hybrid(64));
        let diff = plan
            .execute(&chain)
            .max_abs_diff(&reference.execute(&chain));
        assert_eq!(diff, 0.0);

        // More segments than blocks: clamp to the block count, still exact.
        let plan = PlannedScan::plan(&chain, BppsaOptions::serial().hybrid(2).segmented(64));
        let num_blocks = plan.schedule().block_roots().len();
        assert_eq!(plan.segments(), num_blocks.min(64));
        let reference = PlannedScan::plan(&chain, BppsaOptions::serial().hybrid(2));
        let diff = plan
            .execute(&chain)
            .max_abs_diff(&reference.execute(&chain));
        assert_eq!(diff, 0.0);

        // Diagonal programs never segment (the fast path fans out
        // width-wise already).
        let mut diag = JacobianChain::new(Vector::from_vec(vec![1.0f64, 2.0]));
        for _ in 0..8 {
            diag.push(ScanElement::Sparse(Csr::from_diagonal(&[0.5, -0.25])));
        }
        let plan = PlannedScan::plan(&diag, BppsaOptions::serial().segmented(4));
        assert_eq!(plan.plan_kind(), PlanKind::Diagonal);
        assert_eq!(plan.segments(), 1);
    }

    #[test]
    fn degenerate_lengths_survive_segmentation() {
        // len=1 and len=2 scans (0 or 1 combines) are routine short tails
        // for the stitcher; every executor × segment request must agree.
        for n in [1usize, 2] {
            let chain = sparse_chain(n, 100 + n as u64);
            let reference = bppsa_backward(&chain, BppsaOptions::serial());
            for k in [1usize, 2, 4, 64] {
                for opts in [
                    BppsaOptions::serial().segmented(k),
                    BppsaOptions::pooled().segmented(k),
                    BppsaOptions::serial().hybrid(0).segmented(k),
                ] {
                    let plan = PlannedScan::plan(&chain, opts);
                    let diff = plan.execute(&chain).max_abs_diff(&reference);
                    assert!(diff < 1e-12, "n={n} k={k}: diff {diff}");
                }
            }
        }
    }

    #[test]
    fn segmented_workspace_is_single_lane() {
        let chain = sparse_chain(48, 77);
        let seg = PlannedScan::plan(&chain, BppsaOptions::pooled().hybrid(3).segmented(2));
        let unseg = PlannedScan::plan(&chain, BppsaOptions::pooled().hybrid(3));
        // Segments never row-parallelize a combine, so the segmented
        // workspace must not pay for per-lane scratch accumulators.
        assert!(seg.workspace_bytes::<f64>() <= unseg.workspace_bytes::<f64>());
        assert_eq!(seg.scratch_lanes(), 1);
    }

    #[test]
    fn single_layer_chain_returns_seed() {
        let mut chain = JacobianChain::new(Vector::from_vec(vec![2.0f64, -1.0]));
        chain.push(ScanElement::Sparse(Csr::from_diagonal(&[3.0, 4.0])));
        let plan = PlannedScan::plan(&chain, BppsaOptions::serial());
        let mut ws = plan.workspace::<f64>();
        let out = plan.execute_with(&chain, &mut ws);
        assert_eq!(out.grads().len(), 1);
        assert_eq!(out.grad_x(1).as_slice(), &[2.0, -1.0]);
    }
}
