//! Concurrent batched backward: a pool of workspaces sharing one compiled
//! plan.
//!
//! [`PlannedScan`] already hoists the whole backward pass's symbolic work
//! out of the training loop (§3.3), and one [`ScanWorkspace`] makes a single
//! iteration allocation-free. A serving or training shard, however, runs
//! *many* mini-batches of the same shape at once — and they should all
//! execute the **same** compiled program, not re-plan or serialize on one
//! workspace. This module supplies that layer:
//!
//! * [`WorkspacePool`] — an [`Arc<PlannedScan>`]-shared pool of workspaces
//!   with checkout/checkin semantics: a mutex-guarded free stack that grows
//!   on demand up to a cap and blocks (briefly) when every workspace is in
//!   flight. Checkouts are exclusive: a workspace is owned by exactly one
//!   [`PooledWorkspace`] guard at a time.
//! * [`BatchedBackward`] — the front end: fan `N` chains (mini-batches)
//!   across the shared [`WorkerPool`](bppsa_scan::WorkerPool), each task
//!   checking a workspace out, running the numeric-only
//!   [`PlannedScan::execute_with`], and handing the result to a caller
//!   callback before checkin. After [`BatchedBackward::prewarm`], the
//!   steady state performs **zero heap allocations** end to end (asserted
//!   by `crates/core/tests/alloc_free.rs`).
//!
//! ```
//! use bppsa_core::{BatchedBackward, BppsaOptions, JacobianChain, PlannedScan, ScanElement};
//! use bppsa_sparse::Csr;
//! use bppsa_tensor::Vector;
//! use std::sync::Arc;
//!
//! // Four mini-batches with the same structure (values differ).
//! let chains: Vec<JacobianChain<f64>> = (0..4)
//!     .map(|k| {
//!         let mut chain = JacobianChain::new(Vector::from_vec(vec![1.0 + k as f64, -1.0]));
//!         chain.push(ScanElement::Sparse(Csr::from_diagonal(&[2.0, 0.5 + k as f64])));
//!         chain.push(ScanElement::Sparse(Csr::from_diagonal(&[1.5, 3.0])));
//!         chain
//!     })
//!     .collect();
//!
//! // Plan once, share via Arc, execute all batches over pooled workspaces.
//! let plan = Arc::new(PlannedScan::plan(&chains[0], BppsaOptions::serial()));
//! let batched = BatchedBackward::<f64>::new(Arc::clone(&plan));
//! let results = batched.execute_collect(&chains);
//! assert_eq!(results.len(), 4);
//! assert_eq!(results[1].grad_x(2).as_slice(), &[2.0, -1.0]); // ∇x_n = seed
//! ```

use crate::backward::BackwardResult;
use crate::budget::MemoryBudget;
use crate::chain::JacobianChain;
use crate::planned::{PlannedScan, ScanWorkspace};
use bppsa_scan::{global_pool, Slot};
use bppsa_tensor::Scalar;
use std::ops::{Deref, DerefMut};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// How often a budget-blocked checkout re-polls for headroom. Only reached
/// under budget exhaustion with zero owned workspaces — never on the
/// steady-state path.
const BUDGET_RETRY: Duration = Duration::from_millis(5);

/// An [`Arc<PlannedScan>`]-shared pool of [`ScanWorkspace`]s with exclusive
/// checkout/checkin, growing on demand up to a fixed cap.
///
/// The pool is the bridge between "one plan" and "many concurrent
/// executions": every checked-out workspace was built by
/// [`PlannedScan::workspace`] from the same plan, so any thread may run
/// [`PlannedScan::execute_with`] on its checkout while other threads do the
/// same on theirs. When all `capacity` workspaces are in flight, further
/// checkouts block until one is returned — backpressure instead of
/// unbounded memory.
///
/// # Examples
///
/// ```
/// use bppsa_core::{BppsaOptions, JacobianChain, PlannedScan, ScanElement, WorkspacePool};
/// use bppsa_sparse::Csr;
/// use bppsa_tensor::Vector;
/// use std::sync::Arc;
///
/// let mut chain = JacobianChain::new(Vector::from_vec(vec![1.0_f64, 2.0]));
/// chain.push(ScanElement::Sparse(Csr::from_diagonal(&[3.0, 4.0])));
///
/// let plan = Arc::new(PlannedScan::plan(&chain, BppsaOptions::serial()));
/// let pool = WorkspacePool::<f64>::new(Arc::clone(&plan), 2);
///
/// let mut ws = pool.checkout(); // grows the pool: 0 → 1 workspaces
/// let grads = plan.execute_with(&chain, &mut ws);
/// assert_eq!(grads.grads().len(), 1);
/// drop(ws); // checkin: the workspace is reusable by the next checkout
/// assert_eq!(pool.available(), 1);
/// ```
#[derive(Debug)]
pub struct WorkspacePool<S> {
    plan: Arc<PlannedScan>,
    state: Mutex<PoolState<S>>,
    returned: Condvar,
    capacity: usize,
    /// Optional global ledger every workspace creation reserves against;
    /// `None` preserves the pre-budget unbounded-by-others behavior.
    budget: Option<Arc<MemoryBudget>>,
    /// Byte footprint of one workspace of this plan, charged per creation.
    ws_bytes: usize,
}

#[derive(Debug)]
struct PoolState<S> {
    /// Free stack: LIFO keeps recently-used (cache-warm) workspaces on top.
    free: Vec<(usize, ScanWorkspace<S>)>,
    /// Workspaces created so far; grows to `capacity`, never shrinks.
    created: usize,
}

impl<S: Scalar> WorkspacePool<S> {
    /// An empty pool over `plan`, growing on demand to at most `capacity`
    /// workspaces.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(plan: Arc<PlannedScan>, capacity: usize) -> Self {
        Self::with_budget(plan, capacity, None)
    }

    /// [`WorkspacePool::new`] charging every workspace creation against a
    /// shared [`MemoryBudget`]. Each created workspace reserves
    /// [`PlannedScan::workspace_bytes`] up front; growth that the budget
    /// refuses falls back to blocking checkout (reusing owned workspaces)
    /// and [`WorkspacePool::try_checkout`] returns `None`. The whole
    /// reservation is released when the pool drops.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn with_budget(
        plan: Arc<PlannedScan>,
        capacity: usize,
        budget: Option<Arc<MemoryBudget>>,
    ) -> Self {
        assert!(capacity > 0, "WorkspacePool: capacity must be non-zero");
        let ws_bytes = plan.workspace_bytes::<S>();
        Self {
            plan,
            state: Mutex::new(PoolState {
                free: Vec::with_capacity(capacity),
                created: 0,
            }),
            returned: Condvar::new(),
            capacity,
            budget,
            ws_bytes,
        }
    }

    /// The plan every pooled workspace was built from.
    pub fn plan(&self) -> &Arc<PlannedScan> {
        &self.plan
    }

    /// Maximum number of workspaces the pool will ever hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Workspaces allocated so far (free or checked out).
    pub fn created(&self) -> usize {
        self.lock().created
    }

    /// Workspaces currently available for checkout without growing.
    pub fn available(&self) -> usize {
        self.lock().free.len()
    }

    /// The budget this pool charges, if any.
    pub fn budget(&self) -> Option<&Arc<MemoryBudget>> {
        self.budget.as_ref()
    }

    /// Byte footprint one workspace of this plan reserves when created.
    pub fn workspace_bytes(&self) -> usize {
        self.ws_bytes
    }

    /// Charges the budget for one workspace creation; vacuously true when
    /// no budget is configured.
    fn reserve_workspace(&self) -> bool {
        match &self.budget {
            Some(b) => b.try_reserve(self.ws_bytes),
            None => true,
        }
    }

    /// Allocates workspaces up front so that steady-state checkouts never
    /// allocate: afterwards at least `min(count, capacity)` exist — unless
    /// the budget runs out first, in which case prewarm stops early
    /// (best-effort: warm-up must degrade, not fail, under memory
    /// pressure).
    pub fn prewarm(&self, count: usize) {
        loop {
            // Allocate outside the lock; `created` is bumped first so
            // concurrent prewarms/checkouts never exceed the cap.
            let id = {
                let mut st = self.lock();
                if st.created >= count.min(self.capacity) {
                    return;
                }
                if !self.reserve_workspace() {
                    return;
                }
                st.created += 1;
                st.created - 1
            };
            let ws = self.plan.workspace::<S>();
            let mut st = self.lock();
            st.free.push((id, ws));
            drop(st);
            self.returned.notify_one();
        }
    }

    /// Checks a workspace out, growing the pool if under the cap (and
    /// within the budget) and blocking until a checkin otherwise. The
    /// returned guard checks the workspace back in on drop.
    ///
    /// With a budget configured, refused growth degrades to the same
    /// blocking path as a pool at capacity: existing workspaces are reused
    /// as they return. Only a pool that owns *no* workspace yet (nothing
    /// can ever be checked in) parks on the budget instead, re-attempting
    /// the reservation as other pools release.
    pub fn checkout(&self) -> PooledWorkspace<'_, S> {
        let mut st = self.lock();
        loop {
            if let Some((id, ws)) = st.free.pop() {
                return PooledWorkspace {
                    pool: self,
                    slot: Some((id, ws)),
                };
            }
            if st.created < self.capacity {
                if self.reserve_workspace() {
                    let id = st.created;
                    st.created += 1;
                    drop(st); // allocate the new workspace outside the lock
                    return PooledWorkspace {
                        pool: self,
                        slot: Some((id, self.plan.workspace::<S>())),
                    };
                }
                if st.created == 0 {
                    // No workspace exists and the budget refused the
                    // first: a checkin can never wake us, so wait for a
                    // budget release and retry.
                    drop(st);
                    if let Some(b) = &self.budget {
                        b.wait_for_release(BUDGET_RETRY);
                    }
                    st = self.lock();
                    continue;
                }
                // Budget-refused growth with owned workspaces in flight:
                // fall through and block on a checkin, re-polling so a
                // budget release can still unblock growth.
                let (g, _) = self
                    .returned
                    .wait_timeout(st, BUDGET_RETRY)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                st = g;
                continue;
            }
            st = self
                .returned
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Non-blocking [`WorkspacePool::checkout`]: `None` when every
    /// workspace is in flight and the pool is at capacity (or the budget
    /// refuses the growth).
    pub fn try_checkout(&self) -> Option<PooledWorkspace<'_, S>> {
        let mut st = self.lock();
        if let Some((id, ws)) = st.free.pop() {
            return Some(PooledWorkspace {
                pool: self,
                slot: Some((id, ws)),
            });
        }
        if st.created < self.capacity && self.reserve_workspace() {
            let id = st.created;
            st.created += 1;
            drop(st);
            return Some(PooledWorkspace {
                pool: self,
                slot: Some((id, self.plan.workspace::<S>())),
            });
        }
        None
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, PoolState<S>> {
        // Workspace state is value-only (no invariants to poison): a panic
        // in a holder just returns its workspace late or never.
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn checkin(&self, id: usize, ws: ScanWorkspace<S>) {
        let mut st = self.lock();
        debug_assert!(st.free.len() < self.capacity, "checkin overflow");
        st.free.push((id, ws));
        drop(st);
        self.returned.notify_one();
    }
}

impl<S> Drop for WorkspacePool<S> {
    fn drop(&mut self) {
        if let Some(budget) = &self.budget {
            let created = self
                .state
                .get_mut()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .created;
            budget.release(created * self.ws_bytes);
        }
    }
}

/// Exclusive ownership of one pooled [`ScanWorkspace`] — derefs to the
/// workspace, checks it back in on drop.
#[derive(Debug)]
pub struct PooledWorkspace<'p, S: Scalar> {
    pool: &'p WorkspacePool<S>,
    slot: Option<(usize, ScanWorkspace<S>)>,
}

impl<S: Scalar> PooledWorkspace<'_, S> {
    /// The pool-stable identity of this workspace (`0..created()`), useful
    /// for asserting checkout exclusivity in tests.
    pub fn id(&self) -> usize {
        self.slot.as_ref().expect("workspace present").0
    }
}

impl<S: Scalar> Deref for PooledWorkspace<'_, S> {
    type Target = ScanWorkspace<S>;
    fn deref(&self) -> &ScanWorkspace<S> {
        &self.slot.as_ref().expect("workspace present").1
    }
}

impl<S: Scalar> DerefMut for PooledWorkspace<'_, S> {
    fn deref_mut(&mut self) -> &mut ScanWorkspace<S> {
        &mut self.slot.as_mut().expect("workspace present").1
    }
}

impl<S: Scalar> Drop for PooledWorkspace<'_, S> {
    fn drop(&mut self) {
        if let Some((id, ws)) = self.slot.take() {
            self.pool.checkin(id, ws);
        }
    }
}

/// Concurrent batched backward over one shared plan: fans `N` mini-batch
/// chains across the scan worker pool, each on its own pooled workspace.
///
/// This is the serving-shard shape the ROADMAP targets: one compiled
/// program (`Arc<PlannedScan>`), `K` reusable workspaces, unbounded
/// requests. The symbolic phase ran once at plan time; each request is
/// numeric-only; and after [`BatchedBackward::prewarm`] the steady state
/// allocates nothing — the worker pool's batch header is reused (see
/// [`bppsa_scan::WorkerPool::run_indexed`]) and workspace checkout is a
/// stack pop.
///
/// [`BatchedBackward::execute_collect`] is the convenience entry point;
/// per-result streaming without the collection allocation goes through
/// [`BatchedBackward::execute`]:
///
/// ```
/// # use bppsa_core::{BatchedBackward, BppsaOptions, JacobianChain, PlannedScan, ScanElement};
/// # use bppsa_sparse::Csr;
/// # use bppsa_tensor::Vector;
/// # use std::sync::Arc;
/// # let chains: Vec<JacobianChain<f64>> = (0..3).map(|_| {
/// #     let mut c = JacobianChain::new(Vector::from_vec(vec![1.0, 2.0]));
/// #     c.push(ScanElement::Sparse(Csr::from_diagonal(&[3.0, 4.0])));
/// #     c
/// # }).collect();
/// let plan = Arc::new(PlannedScan::plan(&chains[0], BppsaOptions::serial()));
/// let batched = BatchedBackward::<f64>::new(plan);
/// batched.prewarm(chains.len());
///
/// let norms: Vec<std::sync::Mutex<f64>> = chains.iter().map(|_| Default::default()).collect();
/// batched.execute(&chains, &|i, result| {
///     // Called concurrently, once per chain, while workspace `i` is held.
///     *norms[i].lock().unwrap() = result.grad_x(1).as_slice().iter().sum();
/// });
/// assert!(norms.iter().all(|n| *n.lock().unwrap() != 0.0));
/// ```
#[derive(Debug)]
pub struct BatchedBackward<S> {
    pool: WorkspacePool<S>,
}

impl<S: Scalar> BatchedBackward<S> {
    /// A batched executor over `plan`, sized so every scan worker (plus the
    /// caller) can hold a workspace without blocking.
    pub fn new(plan: Arc<PlannedScan>) -> Self {
        Self::with_capacity(plan, global_pool().size() + 1)
    }

    /// A batched executor with an explicit workspace cap — `capacity`
    /// bounds memory: at most `capacity * plan.workspace_bytes()` of buffer
    /// payload, with excess batches waiting for a checkin.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn with_capacity(plan: Arc<PlannedScan>, capacity: usize) -> Self {
        Self::with_capacity_budgeted(plan, capacity, None)
    }

    /// [`BatchedBackward::with_capacity`] whose pool charges workspace
    /// creations against a shared [`MemoryBudget`] (see
    /// [`WorkspacePool::with_budget`]).
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn with_capacity_budgeted(
        plan: Arc<PlannedScan>,
        capacity: usize,
        budget: Option<Arc<MemoryBudget>>,
    ) -> Self {
        Self {
            pool: WorkspacePool::with_budget(plan, capacity, budget),
        }
    }

    /// The shared plan.
    pub fn plan(&self) -> &Arc<PlannedScan> {
        self.pool.plan()
    }

    /// The underlying workspace pool.
    pub fn workspaces(&self) -> &WorkspacePool<S> {
        &self.pool
    }

    /// Pre-allocates `min(count, capacity)` workspaces so steady-state
    /// [`BatchedBackward::execute`] calls are allocation-free.
    pub fn prewarm(&self, count: usize) {
        self.pool.prewarm(count);
    }

    /// Executes every chain over a pooled workspace, fanning across the
    /// shared scan worker pool, and streams each result to `consume(i,
    /// result)` **while the workspace is still checked out** — copy what
    /// must outlive the call. `consume` runs concurrently for different
    /// `i`; each index is delivered exactly once.
    ///
    /// Allocation-free in the steady state (workspaces prewarmed, pool
    /// header reused); the barrier returns only after every chain's result
    /// was consumed.
    ///
    /// # Panics
    ///
    /// Panics if any chain does not match the plan (see
    /// [`PlannedScan::execute_with`]) or if `consume` panics.
    pub fn execute(
        &self,
        chains: &[JacobianChain<S>],
        consume: &(dyn Fn(usize, &BackwardResult<S>) + Sync),
    ) {
        if chains.is_empty() {
            return;
        }
        let plan = self.pool.plan();
        global_pool().run_indexed(chains.len(), &|i| {
            let mut ws = self.pool.checkout();
            let result = plan.execute_with(&chains[i], &mut ws);
            consume(i, result);
        });
    }

    /// Convenience wrapper collecting every result (clones each out of its
    /// workspace — allocating; hot paths should stream via
    /// [`BatchedBackward::execute`] into pre-sized buffers instead).
    ///
    /// # Panics
    ///
    /// As [`BatchedBackward::execute`].
    pub fn execute_collect(&self, chains: &[JacobianChain<S>]) -> Vec<BackwardResult<S>> {
        let slots: Vec<Slot<BackwardResult<S>>> = chains.iter().map(|_| Slot::new()).collect();
        self.execute(chains, &|i, result| {
            // SAFETY: execute delivers each index to exactly one consume
            // call, making this slot i's unique accessor; the fan-out
            // barrier orders the set before the takes below.
            unsafe { slots[i].set(result.clone()) };
        });
        slots
            .into_iter()
            .map(|slot| {
                // SAFETY: single-threaded after the barrier.
                unsafe { slot.take() }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backward::{bppsa_backward, BppsaOptions};
    use crate::element::ScanElement;
    use bppsa_sparse::Csr;
    use bppsa_tensor::init::{seeded_rng, uniform_vector};
    use bppsa_tensor::Matrix;
    use rand::Rng;

    fn sparse_chain(n: usize, width: usize, seed: u64) -> JacobianChain<f64> {
        let mut rng = seeded_rng(seed);
        let mut chain = JacobianChain::new(uniform_vector(&mut rng, width, 1.0));
        for _ in 0..n {
            let dense = Matrix::from_fn(width, width, |_, _| {
                if rng.random_range(0.0..1.0) < 0.4 {
                    rng.random_range(-1.0..1.0)
                } else {
                    0.0
                }
            });
            chain.push(ScanElement::Sparse(Csr::from_dense(&dense)));
        }
        chain
    }

    /// Same patterns as `template`, fresh values.
    fn revalue(template: &JacobianChain<f64>, seed: u64) -> JacobianChain<f64> {
        let mut rng = seeded_rng(seed);
        let mut chain = JacobianChain::new(uniform_vector(&mut rng, template.seed().len(), 1.0));
        for jt in template.jacobians() {
            let ScanElement::Sparse(m) = jt else {
                unreachable!()
            };
            chain.push(ScanElement::Sparse(
                m.map_values(|_| rng.random_range(-1.0..1.0)),
            ));
        }
        chain
    }

    #[test]
    fn pool_grows_to_cap_and_blocks_at_it() {
        let chain = sparse_chain(6, 8, 1);
        let plan = Arc::new(PlannedScan::plan(&chain, BppsaOptions::serial()));
        let pool = WorkspacePool::<f64>::new(plan, 2);
        assert_eq!(pool.capacity(), 2);
        assert_eq!(pool.created(), 0);

        let a = pool.checkout();
        let b = pool.checkout();
        assert_eq!(pool.created(), 2);
        assert_ne!(a.id(), b.id());
        assert!(pool.try_checkout().is_none(), "cap reached, none free");
        drop(a);
        let c = pool.try_checkout().expect("freed workspace reusable");
        assert_eq!(pool.created(), 2, "no growth past returning checkouts");
        drop((b, c));
        assert_eq!(pool.available(), 2);
    }

    #[test]
    fn prewarm_allocates_up_front() {
        let chain = sparse_chain(4, 6, 2);
        let plan = Arc::new(PlannedScan::plan(&chain, BppsaOptions::serial()));
        let pool = WorkspacePool::<f64>::new(plan, 3);
        pool.prewarm(8); // clamped to capacity
        assert_eq!(pool.created(), 3);
        assert_eq!(pool.available(), 3);
    }

    #[test]
    fn blocked_checkout_wakes_on_checkin() {
        let chain = sparse_chain(4, 6, 3);
        let plan = Arc::new(PlannedScan::plan(&chain, BppsaOptions::serial()));
        let pool = WorkspacePool::<f64>::new(plan, 1);
        let held = pool.checkout();
        std::thread::scope(|s| {
            let handle = s.spawn(|| pool.checkout().id());
            std::thread::sleep(std::time::Duration::from_millis(20));
            drop(held); // unblocks the waiter
            assert_eq!(handle.join().expect("no panic"), 0);
        });
    }

    #[test]
    fn batched_results_match_serial_execution() {
        let template = sparse_chain(12, 10, 4);
        let chains: Vec<JacobianChain<f64>> = (0..6).map(|k| revalue(&template, 100 + k)).collect();
        let plan = Arc::new(PlannedScan::plan(&template, BppsaOptions::serial()));
        let batched = BatchedBackward::with_capacity(Arc::clone(&plan), 3);
        let results = batched.execute_collect(&chains);
        for (chain, pooled) in chains.iter().zip(&results) {
            let serial = bppsa_backward(chain, BppsaOptions::serial());
            // Same compiled instruction sequence → identical rounding.
            assert_eq!(pooled.max_abs_diff(&serial), 0.0);
        }
        assert!(batched.workspaces().created() <= 3);
    }

    #[test]
    fn execute_streams_each_index_exactly_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let template = sparse_chain(8, 8, 5);
        let chains: Vec<JacobianChain<f64>> =
            (0..10).map(|k| revalue(&template, 200 + k)).collect();
        let plan = Arc::new(PlannedScan::plan(&template, BppsaOptions::serial()));
        let batched = BatchedBackward::<f64>::new(plan);
        let hits: Vec<AtomicUsize> = chains.iter().map(|_| AtomicUsize::new(0)).collect();
        batched.execute(&chains, &|i, result| {
            assert_eq!(result.grads().len(), chains[i].num_layers());
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let chain = sparse_chain(3, 5, 6);
        let plan = Arc::new(PlannedScan::plan(&chain, BppsaOptions::serial()));
        let batched = BatchedBackward::<f64>::new(plan);
        batched.execute(&[], &|_, _| unreachable!());
        assert!(batched.execute_collect(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity must be non-zero")]
    fn zero_capacity_rejected() {
        let chain = sparse_chain(2, 4, 7);
        let plan = Arc::new(PlannedScan::plan(&chain, BppsaOptions::serial()));
        let _ = WorkspacePool::<f64>::new(plan, 0);
    }

    #[test]
    fn budget_bounds_growth_and_try_checkout_refuses() {
        let chain = sparse_chain(4, 6, 8);
        let plan = Arc::new(PlannedScan::plan(&chain, BppsaOptions::serial()));
        let ws_bytes = plan.workspace_bytes::<f64>();
        // Room for exactly one workspace, capacity for four.
        let budget = Arc::new(MemoryBudget::new(ws_bytes));
        let pool = WorkspacePool::<f64>::with_budget(plan, 4, Some(Arc::clone(&budget)));
        assert_eq!(pool.workspace_bytes(), ws_bytes);

        let held = pool.checkout();
        assert_eq!(pool.created(), 1);
        assert_eq!(budget.reserved(), ws_bytes);
        // The budget (not the capacity) now refuses further growth.
        assert!(pool.try_checkout().is_none());
        assert_eq!(pool.created(), 1);

        // Blocking checkout falls back to reusing the owned workspace.
        std::thread::scope(|s| {
            let waiter = s.spawn(|| pool.checkout().id());
            std::thread::sleep(Duration::from_millis(20));
            drop(held);
            assert_eq!(waiter.join().expect("no panic"), 0);
        });
        assert!(budget.peak_reserved() <= budget.limit());
    }

    #[test]
    fn prewarm_stops_at_the_budget() {
        let chain = sparse_chain(4, 6, 9);
        let plan = Arc::new(PlannedScan::plan(&chain, BppsaOptions::serial()));
        let ws_bytes = plan.workspace_bytes::<f64>();
        let budget = Arc::new(MemoryBudget::new(2 * ws_bytes));
        let pool = WorkspacePool::<f64>::with_budget(plan, 8, Some(Arc::clone(&budget)));
        pool.prewarm(8); // best-effort: budget admits only two
        assert_eq!(pool.created(), 2);
        assert_eq!(pool.available(), 2);
        assert_eq!(budget.reserved(), 2 * ws_bytes);
    }

    #[test]
    fn dropping_the_pool_releases_its_reservation() {
        let chain = sparse_chain(3, 5, 10);
        let plan = Arc::new(PlannedScan::plan(&chain, BppsaOptions::serial()));
        let ws_bytes = plan.workspace_bytes::<f64>();
        let budget = Arc::new(MemoryBudget::new(4 * ws_bytes));
        {
            let pool =
                WorkspacePool::<f64>::with_budget(Arc::clone(&plan), 4, Some(Arc::clone(&budget)));
            pool.prewarm(3);
            assert_eq!(budget.reserved(), 3 * ws_bytes);
        }
        assert_eq!(budget.reserved(), 0, "drop returns the whole reservation");
        assert_eq!(budget.peak_reserved(), 3 * ws_bytes);
    }

    #[test]
    fn zero_workspace_pool_parks_on_the_budget_until_released() {
        let chain = sparse_chain(3, 5, 11);
        let plan = Arc::new(PlannedScan::plan(&chain, BppsaOptions::serial()));
        let ws_bytes = plan.workspace_bytes::<f64>();
        let budget = Arc::new(MemoryBudget::new(ws_bytes));
        // A sibling pool holds the whole budget; this pool owns nothing,
        // so its first checkout can only proceed once the sibling drops.
        let sibling =
            WorkspacePool::<f64>::with_budget(Arc::clone(&plan), 1, Some(Arc::clone(&budget)));
        sibling.prewarm(1);
        let starved = WorkspacePool::<f64>::with_budget(plan, 1, Some(Arc::clone(&budget)));
        std::thread::scope(|s| {
            let waiter = s.spawn(|| starved.checkout().id());
            std::thread::sleep(Duration::from_millis(20));
            drop(sibling); // releases the budget → starved pool can grow
            assert_eq!(waiter.join().expect("no panic"), 0);
        });
        assert!(budget.peak_reserved() <= budget.limit());
    }
}
