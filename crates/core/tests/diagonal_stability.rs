//! Numerical-stability regression for the log-space diagonal kernel.
//!
//! The failure mode this pins down: an exclusive scan's **tree partials**
//! cover slot ranges that never start at the seed, so their magnitudes are
//! *not* bounded by the outputs'. With per-layer coefficients `a_p = e^{c_p}`
//! and prefix log-sums `L_q = Σ_{p≤q} c_p`, every output is `seed · e^{L}`
//! — but an up-sweep partial over slots `[lo, hi]` is `e^{L_hi − L_{lo−1}}`,
//! which for a V-shaped trajectory reaches `e^{2·depth}` even though
//! `|L| ≤ depth` everywhere.
//!
//! The chains here descend to `L = −depth` over the first half and climb to
//! `+depth` over the second (coefficients near `1 ± ε`, as in long SSM /
//! linear-recurrence training). The right-half subtree partial is then
//! `e^{2·depth}`: with `depth = 690` (f64) the linear kernel overflows to
//! `inf` while the sequential Θ(n) baseline — whose running value is always
//! a bounded prefix — stays finite; the mirrored trajectory underflows the
//! partial to an exact `0.0`, silently zeroing a gradient whose true value
//! is a perfectly normal `~e^{−690}`. The log-space kernel adds `c_p`
//! instead of multiplying `a_p`, so `±2·depth` is just a number; it must
//! stay finite and within 1e-6 relative of the f64 sequential reference.
//!
//! Also pinned: the `DiagonalMode::Auto` plan-time heuristic selects the
//! log-space kernel at exactly [`DIAGONAL_LOG_SPACE_MIN_LEN`], so chains
//! long enough to exhibit this failure get the stable kernel by default.

use bppsa_core::{
    linear_backward, BackwardResult, BppsaOptions, DiagonalKernel, DiagonalMode, JacobianChain,
    PlannedScan, ScanElement, DIAGONAL_LOG_SPACE_MIN_LEN,
};
use bppsa_sparse::Csr;
use bppsa_tensor::{Scalar, Vector};

/// A two-lane diagonal chain of `n` layers whose log-magnitude trajectory
/// descends linearly to `−depth` at the half-way slot and climbs to
/// `+depth` at the end. Lane 1 carries the negated coefficients, so the
/// log kernel's sign plane is exercised on every combine. `n` must be a
/// power of two; the scan tree then covers slots `[0, n−1]` (seed plus the
/// first `n−1` Jacobians) under the hybrid-`log2(n)` schedule, and the
/// right-half subtree partial spans the whole `2·depth` climb.
fn v_shaped_chain<S: Scalar>(n: usize, depth: f64) -> JacobianChain<S> {
    assert!(n.is_power_of_two());
    let h = n / 2;
    let pattern = Csr::from_diagonal(&[S::ONE, S::ONE]).pattern();
    let mut chain = JacobianChain::new(Vector::from_vec(vec![S::ONE, -S::ONE]));
    // The trajectory lives in *slot* order (the scan array is reversed:
    // push index i is slot n − i), so iterate slots descending. Slots
    // 1..h−1 descend to −depth; slots h.. climb twice as fast (the climb
    // has only half the tree's slots to recover 2·depth).
    for s in (1..=n).rev() {
        let c = if s < h {
            -depth / (h - 1) as f64
        } else {
            2.0 * depth / h as f64
        };
        let a = S::from_f64(c.exp());
        chain.push(ScanElement::Sparse(Csr::from_pattern_and_values(
            pattern.clone(),
            vec![a, -a],
        )));
    }
    chain
}

/// Plans and executes `chain` under the given diagonal mode, asserting the
/// expected kernel was chosen.
fn run<S: Scalar>(
    chain: &JacobianChain<S>,
    mode: DiagonalMode,
    expect: DiagonalKernel,
) -> BackwardResult<S> {
    let plan = PlannedScan::plan(chain, BppsaOptions::serial().diagonal(mode));
    assert_eq!(plan.diagonal_kernel(), Some(expect));
    plan.execute(chain)
}

/// Every gradient of `got` within `rel` relative error of `want` — no
/// absolute floor, so a silent underflow to zero cannot hide behind the
/// tolerance (the reference values here go down to `~1e-300` and must be
/// matched, not waved through). The reference may be a wider type (the f32
/// test checks against an f64 baseline); both sides compare as f64.
fn assert_rel_close<S: Scalar, R: Scalar>(
    got: &BackwardResult<S>,
    want: &BackwardResult<R>,
    rel: f64,
) {
    assert_eq!(got.grads().len(), want.grads().len());
    for (i, (a, b)) in got.grads().iter().zip(want.grads()).enumerate() {
        for (k, (&x, &y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
            let (x, y) = (x.to_f64(), y.to_f64());
            assert!(
                (x - y).abs() <= rel * y.abs(),
                "grad {i} lane {k}: {x:e} vs reference {y:e}"
            );
        }
    }
}

/// `n = 2^17`, `depth = 690`: outputs span `e^{±690}` (representable), the
/// right-half partial is `e^{1380}` (not). The linear kernel poisons the
/// deepest gradient with `inf`; log-space matches the sequential baseline.
#[test]
fn overflowing_partials_demand_the_log_kernel_f64() {
    let chain = v_shaped_chain::<f64>(1 << 17, 690.0);
    // The sequential Θ(n) baseline only ever holds bounded prefixes: it is
    // finite end to end, and is the accuracy reference below.
    let reference = linear_backward(&chain);
    assert!(
        reference
            .grads()
            .iter()
            .all(|g| g.as_slice().iter().all(|v| v.is_finite())),
        "baseline must be finite: every true gradient is representable"
    );

    let linear = run(&chain, DiagonalMode::Linear, DiagonalKernel::Linear);
    let deepest = &linear.grads()[0];
    assert!(
        deepest.as_slice().iter().any(|v| !v.is_finite()),
        "linear kernel must overflow through the e^1380 partial (got {:?})",
        deepest.as_slice()
    );

    let log = run(&chain, DiagonalMode::LogSpace, DiagonalKernel::LogSpace);
    assert_rel_close(&log, &reference, 1e-6);
}

/// The mirrored trajectory: the right-half partial is `e^{−1380}`, which
/// flushes to an exact `+0.0` — *silent* corruption (nothing non-finite to
/// observe) of a gradient whose true value is a normal `~e^{−690}`.
#[test]
fn underflowing_partials_silently_zero_the_linear_kernel_f64() {
    let chain = v_shaped_chain::<f64>(1 << 17, -690.0);
    let reference = linear_backward(&chain);

    let linear = run(&chain, DiagonalMode::Linear, DiagonalKernel::Linear);
    let (got, want) = (
        linear.grads()[0].as_slice()[0],
        reference.grads()[0].as_slice()[0],
    );
    assert_eq!(got, 0.0, "the flushed partial must zero ∇x_1 exactly");
    assert!(
        want != 0.0 && want.is_normal(),
        "the true ∇x_1 is a normal number ({want:e}) — the zero is silent corruption"
    );

    let log = run(&chain, DiagonalMode::LogSpace, DiagonalKernel::LogSpace);
    assert_rel_close(&log, &reference, 1e-6);
}

/// f32 miniature of the same construction: `depth = 80` keeps outputs
/// within f32 range (`ln MAX ≈ 88.7`) while the `e^{160}` partial
/// overflows. Tolerance is wider — f32 carries ~7 digits through the
/// `ln`/`exp` round trips.
#[test]
fn overflowing_partials_demand_the_log_kernel_f32() {
    let chain = v_shaped_chain::<f32>(1 << 12, 80.0);
    // The accuracy reference runs in f64 over the *same* stored f32
    // coefficients, so it isolates the scan kernel's error from the
    // chain-construction rounding.
    let mut twin = JacobianChain::<f64>::new(Vector::from_vec(vec![1.0, -1.0]));
    for jt in chain.jacobians() {
        let ScanElement::Sparse(m) = jt else {
            unreachable!("v_shaped_chain builds sparse elements")
        };
        let diag: Vec<f64> = m.data().iter().map(|&v| v as f64).collect();
        twin.push(ScanElement::Sparse(Csr::from_diagonal(&diag)));
    }
    let reference = linear_backward(&twin);
    assert!(
        reference
            .grads()
            .iter()
            .all(|g| g.as_slice().iter().all(|v| v.is_finite())),
        "baseline must be finite"
    );

    let linear = run(&chain, DiagonalMode::Linear, DiagonalKernel::Linear);
    assert!(
        linear.grads()[0].as_slice().iter().any(|v| !v.is_finite()),
        "f32 linear kernel must overflow through the e^160 partial"
    );

    let log = run(&chain, DiagonalMode::LogSpace, DiagonalKernel::LogSpace);
    assert_rel_close(&log, &reference, 5e-3);
}

/// The plan-time heuristic: `Auto` switches to log-space at exactly
/// [`DIAGONAL_LOG_SPACE_MIN_LEN`] layers, so the chains above — and any
/// real workload long enough to build a `e^{2·depth}` partial — take the
/// stable kernel without the caller opting in.
#[test]
fn auto_mode_selects_log_space_where_the_linear_kernel_breaks() {
    let at = |n: usize| {
        let pattern = Csr::from_diagonal(&[1.0f64]).pattern();
        let mut chain = JacobianChain::new(Vector::from_vec(vec![1.0f64]));
        for _ in 0..n {
            chain.push(ScanElement::Sparse(Csr::from_pattern_and_values(
                pattern.clone(),
                vec![1.0f64],
            )));
        }
        PlannedScan::plan(&chain, BppsaOptions::serial()).diagonal_kernel()
    };
    assert_eq!(
        at(DIAGONAL_LOG_SPACE_MIN_LEN - 1),
        Some(DiagonalKernel::Linear)
    );
    assert_eq!(
        at(DIAGONAL_LOG_SPACE_MIN_LEN),
        Some(DiagonalKernel::LogSpace)
    );

    // And the overflowing chain itself plans to log-space under Auto — the
    // default configuration survives the adversarial trajectory.
    let chain = v_shaped_chain::<f64>(1 << 17, 690.0);
    let auto = run(&chain, DiagonalMode::Auto, DiagonalKernel::LogSpace);
    assert_rel_close(&auto, &linear_backward(&chain), 1e-6);
}
