//! Tier-1 allocation-behavior test: the steady-state planned backward pass
//! must be **zero-allocation**.
//!
//! A counting global allocator wraps `System`; after warm-up, a serial
//! [`PlannedScan::execute_with`] over a reused [`ScanWorkspace`] must
//! perform 0 allocations and 0 deallocations. The pooled executor is
//! allowed exactly its documented overhead: one batch-header allocation
//! per parallel fan-out (and nothing proportional to chain size or nnz).
//!
//! This file intentionally contains a single `#[test]` so no concurrent
//! test thread can pollute the process-wide counters.

use bppsa_core::{BppsaOptions, JacobianChain, PlannedScan, ScanElement};
use bppsa_sparse::Csr;
use bppsa_tensor::init::{seeded_rng, uniform_vector};
use bppsa_tensor::Matrix;
use rand::Rng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

struct CountingAllocator;

static TRACKING: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);
static DEALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if TRACKING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        if TRACKING.load(Ordering::Relaxed) {
            DEALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if TRACKING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Runs `f` with counting enabled, returning `(allocs, deallocs)`.
fn counted(f: impl FnOnce()) -> (u64, u64) {
    ALLOCS.store(0, Ordering::SeqCst);
    DEALLOCS.store(0, Ordering::SeqCst);
    TRACKING.store(true, Ordering::SeqCst);
    f();
    TRACKING.store(false, Ordering::SeqCst);
    (
        ALLOCS.load(Ordering::SeqCst),
        DEALLOCS.load(Ordering::SeqCst),
    )
}

fn sparse_chain(n: usize, width: usize, seed: u64) -> JacobianChain<f64> {
    let mut rng = seeded_rng(seed);
    let mut chain = JacobianChain::new(uniform_vector(&mut rng, width, 1.0));
    for _ in 0..n {
        let dense = Matrix::from_fn(width, width, |_, _| {
            if rng.random_range(0.0..1.0) < 0.3 {
                rng.random_range(-1.0..1.0)
            } else {
                0.0
            }
        });
        chain.push(ScanElement::Sparse(Csr::from_dense(&dense)));
    }
    chain
}

#[test]
fn steady_state_planned_backward_is_allocation_free() {
    let chain = sparse_chain(24, 12, 7);

    // --- Serial executor: strictly zero heap traffic in the steady state.
    let plan = PlannedScan::plan(&chain, BppsaOptions::serial());
    let mut ws = plan.workspace::<f64>();
    // Warm-up: first calls may grow buffers to steady-state capacity.
    let reference = plan.execute_with(&chain, &mut ws).clone();
    let _ = plan.execute_with(&chain, &mut ws);

    let (allocs, deallocs) = counted(|| {
        let _ = plan.execute_with(&chain, &mut ws);
    });
    assert_eq!(
        (allocs, deallocs),
        (0, 0),
        "steady-state serial execute_with must not touch the heap"
    );

    // Still correct after the counted run.
    let diff = plan.execute_with(&chain, &mut ws).max_abs_diff(&reference);
    assert!(diff < 1e-12, "diff {diff}");

    // --- Pooled executor: only the worker pool's per-fan-out batch header
    // is permitted — a small constant per stage, nothing proportional to
    // the chain length or matrix sizes.
    let pooled = PlannedScan::plan(&chain, BppsaOptions::pooled());
    let mut pws = pooled.workspace::<f64>();
    let _ = pooled.execute_with(&chain, &mut pws); // spawns/warms the pool
    let _ = pooled.execute_with(&chain, &mut pws);

    let stages = 2 * pooled.schedule().up_levels().len() + 2;
    let (pallocs, _pdeallocs) = counted(|| {
        let _ = pooled.execute_with(&chain, &mut pws);
    });
    let budget = 4 * stages as u64;
    assert!(
        pallocs <= budget,
        "pooled execute_with allocated {pallocs} times (budget {budget})"
    );
    let diff = pooled
        .execute_with(&chain, &mut pws)
        .max_abs_diff(&reference);
    assert!(diff < 1e-12, "pooled diff {diff}");

    // --- Contrast: the allocating execute() path heap-allocates every call
    // (that is exactly what the workspace API removes).
    let (legacy_allocs, _) = counted(|| {
        let _ = plan.execute(&chain);
    });
    assert!(
        legacy_allocs > 0,
        "sanity: the non-workspace path should allocate"
    );
}
