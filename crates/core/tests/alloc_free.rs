//! Tier-1 allocation-behavior test: the steady-state planned backward pass
//! must be **zero-allocation** — serial, pooled, and batched-over-a-
//! workspace-pool alike.
//!
//! A counting global allocator wraps `System`; after warm-up, a serial
//! [`PlannedScan::execute_with`] over a reused [`ScanWorkspace`] must
//! perform 0 allocations and 0 deallocations. The pooled executor now
//! publishes batches into the worker pool's reused generation-stamped
//! header, so it is held to the same zero-allocation bar (the old per-
//! fan-out `Arc` header was the last remaining heap traffic). So is
//! [`BatchedBackward`]: prewarmed workspace checkout/checkin plus the
//! compiled numeric program, fanned across the pool, allocate nothing.
//!
//! This file intentionally contains a single `#[test]` so no concurrent
//! test thread can pollute the process-wide counters.

use bppsa_core::{BatchedBackward, BppsaOptions, JacobianChain, PlannedScan, ScanElement};
use bppsa_sparse::Csr;
use bppsa_tensor::init::{seeded_rng, uniform_vector};
use bppsa_tensor::Matrix;
use rand::Rng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

struct CountingAllocator;

static TRACKING: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);
static DEALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if TRACKING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        if TRACKING.load(Ordering::Relaxed) {
            DEALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if TRACKING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Runs `f` with counting enabled, returning `(allocs, deallocs)`.
fn counted(f: impl FnOnce()) -> (u64, u64) {
    ALLOCS.store(0, Ordering::SeqCst);
    DEALLOCS.store(0, Ordering::SeqCst);
    TRACKING.store(true, Ordering::SeqCst);
    f();
    TRACKING.store(false, Ordering::SeqCst);
    (
        ALLOCS.load(Ordering::SeqCst),
        DEALLOCS.load(Ordering::SeqCst),
    )
}

fn sparse_chain(n: usize, width: usize, seed: u64) -> JacobianChain<f64> {
    let mut rng = seeded_rng(seed);
    let mut chain = JacobianChain::new(uniform_vector(&mut rng, width, 1.0));
    for _ in 0..n {
        let dense = Matrix::from_fn(width, width, |_, _| {
            if rng.random_range(0.0..1.0) < 0.3 {
                rng.random_range(-1.0..1.0)
            } else {
                0.0
            }
        });
        chain.push(ScanElement::Sparse(Csr::from_dense(&dense)));
    }
    chain
}

/// An all-diagonal chain (every layer a full-diagonal CSR sharing one
/// pattern), so the plan compiles the elementwise fast path.
fn diagonal_chain(n: usize, width: usize, seed: u64) -> JacobianChain<f64> {
    let mut rng = seeded_rng(seed);
    let pattern = Csr::from_diagonal(&vec![1.0f64; width]).pattern();
    let mut chain = JacobianChain::new(uniform_vector(&mut rng, width, 1.0));
    for _ in 0..n {
        let diag: Vec<f64> = (0..width).map(|_| rng.random_range(-1.2..1.2)).collect();
        chain.push(ScanElement::Sparse(Csr::from_pattern_and_values(
            pattern.clone(),
            diag,
        )));
    }
    chain
}

/// Same sparsity patterns as `template` (so the same plan matches), fresh
/// random values.
fn sparse_chain_like(template: &JacobianChain<f64>, seed: u64) -> JacobianChain<f64> {
    let mut rng = seeded_rng(seed);
    let mut chain = JacobianChain::new(uniform_vector(&mut rng, template.seed().len(), 1.0));
    for jt in template.jacobians() {
        let ScanElement::Sparse(m) = jt else {
            unreachable!()
        };
        chain.push(ScanElement::Sparse(
            m.map_values(|_| rng.random_range(-1.0..1.0)),
        ));
    }
    chain
}

/// Pre-sized per-chain result sink: records a gradient checksum without
/// allocating (so it can run inside the counted region), verified against
/// the generic backward afterwards.
struct CountingSink {
    sums: Vec<std::sync::Mutex<f64>>,
}

impl CountingSink {
    fn new(n: usize) -> Self {
        Self {
            sums: (0..n).map(|_| std::sync::Mutex::new(f64::NAN)).collect(),
        }
    }

    fn record(&self, i: usize, result: &bppsa_core::BackwardResult<f64>) {
        let sum: f64 = result
            .grads()
            .iter()
            .flat_map(|g| g.as_slice())
            .copied()
            .sum();
        *self.sums[i].lock().unwrap() = sum;
    }

    fn verify(&self, chains: &[JacobianChain<f64>]) {
        for (i, chain) in chains.iter().enumerate() {
            let reference = bppsa_core::bppsa_backward(chain, BppsaOptions::serial());
            let expect: f64 = reference
                .grads()
                .iter()
                .flat_map(|g| g.as_slice())
                .copied()
                .sum();
            let got = *self.sums[i].lock().unwrap();
            assert!((got - expect).abs() < 1e-12, "chain {i}: {got} vs {expect}");
        }
    }
}

#[test]
fn steady_state_planned_backward_is_allocation_free() {
    let chain = sparse_chain(24, 12, 7);

    // --- Serial executor: strictly zero heap traffic in the steady state.
    let plan = PlannedScan::plan(&chain, BppsaOptions::serial());
    let mut ws = plan.workspace::<f64>();
    // Warm-up: first calls may grow buffers to steady-state capacity.
    let reference = plan.execute_with(&chain, &mut ws).clone();
    let _ = plan.execute_with(&chain, &mut ws);

    let (allocs, deallocs) = counted(|| {
        let _ = plan.execute_with(&chain, &mut ws);
    });
    assert_eq!(
        (allocs, deallocs),
        (0, 0),
        "steady-state serial execute_with must not touch the heap"
    );

    // Still correct after the counted run.
    let diff = plan.execute_with(&chain, &mut ws).max_abs_diff(&reference);
    assert!(diff < 1e-12, "diff {diff}");

    // --- Pooled executor: the worker pool publishes into a reused
    // generation-stamped batch header, so the pooled steady state is now
    // *strictly* zero-allocation too (the per-fan-out `Arc<ActiveBatch>`
    // was the last remaining heap traffic).
    let pooled = PlannedScan::plan(&chain, BppsaOptions::pooled());
    let mut pws = pooled.workspace::<f64>();
    let _ = pooled.execute_with(&chain, &mut pws); // spawns/warms the pool
    let _ = pooled.execute_with(&chain, &mut pws);

    let (pallocs, pdeallocs) = counted(|| {
        let _ = pooled.execute_with(&chain, &mut pws);
    });
    assert_eq!(
        (pallocs, pdeallocs),
        (0, 0),
        "steady-state pooled execute_with must not touch the heap"
    );
    let diff = pooled
        .execute_with(&chain, &mut pws)
        .max_abs_diff(&reference);
    assert!(diff < 1e-12, "pooled diff {diff}");

    // --- BatchedBackward over a workspace pool: N same-shape mini-batches
    // fanned across the worker pool, each on its own pooled workspace.
    // After prewarming, checkout/checkin (stack pop/push) + the numeric
    // program + the reused pool header allocate nothing.
    let batch_chains: Vec<JacobianChain<f64>> =
        (40..44).map(|s| sparse_chain_like(&chain, s)).collect();
    let batched = BatchedBackward::with_capacity(
        std::sync::Arc::new(PlannedScan::plan(&chain, BppsaOptions::serial())),
        3,
    );
    batched.prewarm(batch_chains.len());
    let sink = CountingSink::new(batch_chains.len());
    batched.execute(&batch_chains, &|i, result| sink.record(i, result));
    batched.execute(&batch_chains, &|i, result| sink.record(i, result));

    let (ballocs, bdeallocs) = counted(|| {
        batched.execute(&batch_chains, &|i, result| sink.record(i, result));
    });
    assert_eq!(
        (ballocs, bdeallocs),
        (0, 0),
        "steady-state BatchedBackward::execute must not touch the heap"
    );
    sink.verify(&batch_chains);

    // --- Diagonal fast path: the elementwise program (linear and log-space
    // kernels alike) is held to the same bar — serial, pooled, and batched
    // over a workspace pool. The log kernel's sign plane and the dense
    // `(n+2)×width` value plane are part of the prebuilt workspace, so the
    // steady state is pure loads/multiplies/stores.
    let diag_chain = diagonal_chain(48, 12, 11);
    for mode in [
        bppsa_core::DiagonalMode::Linear,
        bppsa_core::DiagonalMode::LogSpace,
    ] {
        let reference = bppsa_core::bppsa_backward(&diag_chain, BppsaOptions::serial());
        let tolerance = match mode {
            bppsa_core::DiagonalMode::Linear => 0.0, // bit-for-bit contract
            _ => 1e-9,
        };
        for opts in [BppsaOptions::serial(), BppsaOptions::pooled()] {
            let plan = PlannedScan::plan(&diag_chain, opts.diagonal(mode));
            assert!(plan.diagonal_kernel().is_some(), "must take the fast path");
            let mut ws = plan.workspace::<f64>();
            let _ = plan.execute_with(&diag_chain, &mut ws);
            let _ = plan.execute_with(&diag_chain, &mut ws);
            let (allocs, deallocs) = counted(|| {
                let _ = plan.execute_with(&diag_chain, &mut ws);
            });
            assert_eq!(
                (allocs, deallocs),
                (0, 0),
                "steady-state diagonal ({mode:?}, {:?}) must not touch the heap",
                opts.executor
            );
            let diff = plan
                .execute_with(&diag_chain, &mut ws)
                .max_abs_diff(&reference);
            assert!(diff <= tolerance, "diagonal {mode:?} diff {diff}");
        }
    }

    // Batched diagonal: same-shape value-refreshed chains over the
    // workspace pool, zero heap traffic after prewarm.
    let diag_batch: Vec<JacobianChain<f64>> = (60..64)
        .map(|s| sparse_chain_like(&diag_chain, s))
        .collect();
    let diag_batched = BatchedBackward::with_capacity(
        std::sync::Arc::new(PlannedScan::plan(&diag_chain, BppsaOptions::serial())),
        3,
    );
    assert!(
        diag_batched.plan().diagonal_kernel().is_some(),
        "batched diagonal plan must take the fast path"
    );
    diag_batched.prewarm(diag_batch.len());
    let diag_sink = CountingSink::new(diag_batch.len());
    diag_batched.execute(&diag_batch, &|i, result| diag_sink.record(i, result));
    diag_batched.execute(&diag_batch, &|i, result| diag_sink.record(i, result));
    let (dallocs, ddeallocs) = counted(|| {
        diag_batched.execute(&diag_batch, &|i, result| diag_sink.record(i, result));
    });
    assert_eq!(
        (dallocs, ddeallocs),
        (0, 0),
        "steady-state batched diagonal must not touch the heap"
    );
    diag_sink.verify(&diag_batch);

    // --- Numeric kernel modes: the Gustavson and dense-panel kernels route
    // every execution through workspace-owned KernelScratch (accumulator
    // lanes + packed panels), so forced and Auto kernel selections hold the
    // same zero-allocation bar as the gather program — serial and pooled.
    // Width 16 at 0.3 density clears the dense kernel's width/density
    // gates, so Auto genuinely compiles dense combines here.
    let wide_chain = sparse_chain(12, 16, 9);
    let kernel_reference = bppsa_core::bppsa_backward(&wide_chain, BppsaOptions::serial());
    for kernel in [
        bppsa_core::KernelMode::Auto,
        bppsa_core::KernelMode::Gustavson,
        bppsa_core::KernelMode::Dense,
    ] {
        for opts in [BppsaOptions::serial(), BppsaOptions::pooled()] {
            let plan = PlannedScan::plan(&wide_chain, opts.kernel(kernel));
            if kernel == bppsa_core::KernelMode::Auto {
                assert!(
                    plan.kernel_counts().dense > 0,
                    "Auto must compile dense combines on this chain"
                );
            }
            let mut ws = plan.workspace::<f64>();
            let _ = plan.execute_with(&wide_chain, &mut ws);
            let _ = plan.execute_with(&wide_chain, &mut ws);
            let (allocs, deallocs) = counted(|| {
                let _ = plan.execute_with(&wide_chain, &mut ws);
            });
            assert_eq!(
                (allocs, deallocs),
                (0, 0),
                "steady-state {kernel:?} kernel ({:?}) must not touch the heap",
                opts.executor
            );
            let diff = plan
                .execute_with(&wide_chain, &mut ws)
                .max_abs_diff(&kernel_reference);
            assert!(diff < 1e-12, "kernel {kernel:?} diff {diff}");
        }
    }

    // --- Segment-parallel execution: per-segment drivers publish into the
    // pool's preallocated headers, worker groups are computed
    // arithmetically (no carve Vec on the hot path), and every segment's
    // slice walk reuses the same SSA buffers — so segmented plans hold the
    // identical zero-allocation bar, serial and pooled, K=2 and K=4.
    let deep_chain = sparse_chain(64, 12, 13);
    let seg_reference = bppsa_core::bppsa_backward(&deep_chain, BppsaOptions::serial());
    for k in [2usize, 4] {
        for opts in [BppsaOptions::serial(), BppsaOptions::pooled()] {
            let plan = PlannedScan::plan(&deep_chain, opts.segmented(k));
            assert!(
                plan.segments() >= 2,
                "segmentation must engage on a 64-layer chain (k={k})"
            );
            let mut ws = plan.workspace::<f64>();
            let _ = plan.execute_with(&deep_chain, &mut ws);
            let _ = plan.execute_with(&deep_chain, &mut ws);
            let (allocs, deallocs) = counted(|| {
                let _ = plan.execute_with(&deep_chain, &mut ws);
            });
            assert_eq!(
                (allocs, deallocs),
                (0, 0),
                "steady-state segmented (k={k}, {:?}) must not touch the heap",
                opts.executor
            );
            let diff = plan
                .execute_with(&deep_chain, &mut ws)
                .max_abs_diff(&seg_reference);
            assert!(diff < 1e-12, "segmented k={k} diff {diff}");
        }
    }

    // --- Contrast: the allocating execute() path heap-allocates every call
    // (that is exactly what the workspace API removes).
    let (legacy_allocs, _) = counted(|| {
        let _ = plan.execute(&chain);
    });
    assert!(
        legacy_allocs > 0,
        "sanity: the non-workspace path should allocate"
    );
}
