//! Property-based tests for the [`Mru`] store's eviction contract.
//!
//! The serving layer hangs live resources (lane dispatcher threads, bounded
//! queues, workspace pools) off `Mru` entries, so the store's bookkeeping
//! is load-bearing: a duplicated eviction would shut a lane down twice, a
//! *lost* eviction would leak a dispatcher that parks forever and hangs
//! shutdown. Against a naive recency-list model these tests pin:
//!
//! 1. **Capacity** — the store never holds more than `capacity` entries.
//! 2. **LRU order** — the evicted entry is always the least recently
//!    used one (insertions and hits both refresh recency; `find` hits
//!    refresh it too).
//! 3. **Conservation** — every value ever inserted is, at the end, either
//!    still live (yielded exactly once by `drain`, in LRU order) or was
//!    yielded exactly once to the eviction side-channel of
//!    [`Mru::find_or_insert_with_evicted`]. Nothing is dropped silently,
//!    nothing is handed out twice.

use bppsa_core::Mru;
use proptest::prelude::*;

/// One scripted operation against the store.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// `find_or_insert_with_evicted` keyed by `key`.
    FindOrInsert { key: u8 },
    /// Hit-only `find` keyed by `key` (refreshes recency on a hit).
    Find { key: u8 },
}

/// A stored entry: routing key plus a unique birth id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry {
    key: u8,
    id: usize,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (0..10u8, 0..8u8).prop_map(|(key, kind)| {
        if kind < 6 {
            Op::FindOrInsert { key }
        } else {
            Op::Find { key }
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn mru_eviction_contract(
        capacity in 1..6usize,
        ops in proptest::collection::vec(op_strategy(), 0..80),
    ) {
        let mut mru: Mru<Entry> = Mru::new(capacity);
        // Reference model: keys in recency order, least recent first.
        let mut model: Vec<u8> = Vec::new();
        let mut next_id = 0usize;
        // Conservation ledger: how each id left the store (or None while
        // live). `Some(n)` counts eviction/drain yields — must end at 1.
        let mut yielded: Vec<usize> = Vec::new();
        let mut live_ids: Vec<Option<usize>> = Vec::new(); // per id: live?

        for op in ops {
            match op {
                Op::FindOrInsert { key } => {
                    let was_hit = model.contains(&key);
                    let expect_evicted_key = if !was_hit && model.len() == capacity {
                        Some(model[0])
                    } else {
                        None
                    };
                    let id = next_id;
                    let (entry, inserted, evicted) = mru.find_or_insert_with_evicted(
                        |e| e.key == key,
                        || Entry { key, id },
                    );
                    prop_assert_eq!(entry.key, key);
                    prop_assert_eq!(inserted, !was_hit, "hit/miss must match the model");
                    if inserted {
                        next_id += 1;
                        yielded.push(0);
                        live_ids.push(Some(id));
                    }
                    match (evicted, expect_evicted_key) {
                        (None, None) => {}
                        (Some(out), Some(expect_key)) => {
                            prop_assert_eq!(out.key, expect_key, "evicted entry must be the LRU");
                            prop_assert_eq!(
                                live_ids[out.id].take(),
                                Some(out.id),
                                "evicted value must have been live exactly once"
                            );
                            yielded[out.id] += 1;
                        }
                        (got, want) => panic!(
                            "eviction mismatch: got {:?}, wanted key {:?}",
                            got.map(|e| e.key),
                            want
                        ),
                    }
                    // Model recency update: hit or insert moves to back.
                    model.retain(|k| *k != key);
                    if expect_evicted_key.is_some() {
                        model.remove(0);
                    }
                    model.push(key);
                }
                Op::Find { key } => {
                    let was_hit = model.contains(&key);
                    let found = mru.find(|e| e.key == key);
                    prop_assert_eq!(found.is_some(), was_hit, "find hit must match the model");
                    if let Some(entry) = found {
                        prop_assert_eq!(entry.key, key);
                        // A find hit refreshes recency.
                        model.retain(|k| *k != key);
                        model.push(key);
                    }
                }
            }
            prop_assert!(mru.len() <= capacity, "capacity exceeded");
            prop_assert_eq!(mru.len(), model.len(), "live count must match the model");
            prop_assert_eq!(mru.is_empty(), model.is_empty());
            if let Some(last) = mru.last() {
                prop_assert_eq!(
                    last.key,
                    *model.last().expect("nonempty together"),
                    "most recently used entry must match the model"
                );
            }
        }

        // Drain yields every live entry exactly once, LRU first.
        let drained: Vec<Entry> = mru.drain().collect();
        let drained_keys: Vec<u8> = drained.iter().map(|e| e.key).collect();
        prop_assert_eq!(drained_keys, model, "drain must yield in LRU order");
        prop_assert!(mru.is_empty(), "drain must empty the store");
        for entry in &drained {
            prop_assert_eq!(
                live_ids[entry.id].take(),
                Some(entry.id),
                "drained value must have been live exactly once"
            );
            yielded[entry.id] += 1;
        }

        // Conservation: every id ever inserted left the store exactly once
        // (eviction or drain), never twice, never silently.
        for (id, count) in yielded.iter().enumerate() {
            prop_assert_eq!(
                *count,
                1,
                "value {} must be yielded exactly once (got {})",
                id,
                count
            );
            prop_assert!(live_ids[id].is_none(), "value {} still marked live", id);
        }
    }
}
