//! Differential suite for segment-parallel execution: a segmented
//! [`PlannedScan`] must produce **bit-for-bit identical** gradients to the
//! unsegmented plan over the same schedule — for every segment count, both
//! executors, all numeric kernel modes, diagonal-mode routings, and
//! interface-width extremes (widths down to 1 between wide layers).
//!
//! The contract being exercised (see `bppsa-core`'s `segmented` module):
//! segmentation partitions the compiled program's *instruction stream* at
//! schedule-block boundaries — it never recompiles sub-chains — so the
//! segmented execution runs the same instruction multiset over the same
//! single-assignment buffers. Up/down pairs never cross block boundaries
//! (pinned in `bppsa-scan`), making the reordering dataflow-equivalent and
//! the results exactly equal, not merely close.
//!
//! CI runs this suite under `RUST_TEST_THREADS=1` so the pool-concurrency
//! cases interleave deterministically with nothing else on the pool.

use bppsa_core::{
    bppsa_backward, BackwardResult, BppsaOptions, DiagonalMode, JacobianChain, KernelMode,
    PlanKind, PlannedScan, ScanElement,
};
use bppsa_sparse::Csr;
use bppsa_tensor::init::{seeded_rng, uniform_vector};
use bppsa_tensor::Matrix;
use proptest::prelude::*;
use rand::Rng;

/// Random rectangular CSR chain with varying layer widths drawn from
/// `widths` — adjacent picks create narrow/wide interfaces for the cut
/// heuristic to chase.
fn varied_chain(n: usize, widths: &[usize], density: f64, seed: u64) -> JacobianChain<f64> {
    let mut rng = seeded_rng(seed);
    let dims: Vec<usize> = (0..=n)
        .map(|i| widths[(i * 7 + seed as usize) % widths.len()])
        .collect();
    let mut chain = JacobianChain::new(uniform_vector(&mut rng, dims[n], 1.0));
    for i in 0..n {
        let dense = Matrix::from_fn(dims[i], dims[i + 1], |_, _| {
            if rng.random_range(0.0..1.0) < density {
                rng.random_range(-1.0..1.0)
            } else {
                0.0
            }
        });
        chain.push(ScanElement::Sparse(Csr::from_dense(&dense)));
    }
    chain
}

/// All-diagonal chain (stays on the elementwise fast path).
fn diagonal_chain(n: usize, width: usize, seed: u64) -> JacobianChain<f64> {
    let mut rng = seeded_rng(seed);
    let pattern = Csr::from_diagonal(&vec![1.0f64; width]).pattern();
    let mut chain = JacobianChain::new(uniform_vector(&mut rng, width, 1.0));
    for _ in 0..n {
        let diag: Vec<f64> = (0..width).map(|_| rng.random_range(-1.2..1.2)).collect();
        chain.push(ScanElement::Sparse(Csr::from_pattern_and_values(
            pattern.clone(),
            diag,
        )));
    }
    chain
}

/// Bit-level equality of two results, including the sign of exact zeros.
fn assert_bits_eq(got: &BackwardResult<f64>, want: &BackwardResult<f64>, what: &str) {
    assert_eq!(got.grads().len(), want.grads().len(), "{what}: layer count");
    for (i, (g, w)) in got.grads().iter().zip(want.grads()).enumerate() {
        for (j, (x, y)) in g.as_slice().iter().zip(w.as_slice()).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{what}: grads[{i}][{j}] = {x:?} vs {y:?}"
            );
        }
    }
}

const MODES: [KernelMode; 4] = [
    KernelMode::Auto,
    KernelMode::Gather,
    KernelMode::Gustavson,
    KernelMode::Dense,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // Random chains × K sweep × executors: the segmented plan must match
    // the unsegmented plan over the same (derived) schedule exactly, and
    // stay within fp-reassociation distance of the unplanned backward.
    #[test]
    fn segmented_is_bit_for_bit_identical(
        n in 2usize..48,
        width_class in 0usize..3,
        density in 0.1f64..0.9,
        k in 2usize..6,
        seed in 0u64..1000,
    ) {
        let widths: &[usize] = match width_class {
            0 => &[3, 4, 5],
            1 => &[1, 8, 12],   // interface-width extremes
            _ => &[2, 2, 9],
        };
        let chain = varied_chain(n, widths, density, seed);
        let opts = BppsaOptions::serial().segmented(k);
        // The unsegmented reference pins the depth segmentation derived.
        let depth = opts.segmented_up_levels(n + 1);
        let reference = PlannedScan::plan(&chain, BppsaOptions::serial().hybrid(depth))
            .execute(&chain);
        let unplanned = bppsa_backward(&chain, BppsaOptions::serial().hybrid(depth));
        prop_assert!(reference.max_abs_diff(&unplanned) < 1e-10);
        for exec in [BppsaOptions::serial(), BppsaOptions::pooled()] {
            let plan = PlannedScan::plan(&chain, exec.segmented(k));
            prop_assert_eq!(plan.plan_kind(), PlanKind::Csr);
            let mut ws = plan.workspace::<f64>();
            // Twice through the same workspace: pristine then dirty buffers.
            for round in 0..2 {
                let result = plan.execute_with(&chain, &mut ws).clone();
                assert_bits_eq(
                    &result,
                    &reference,
                    &format!("k={k}/{:?} round {round}", exec.executor),
                );
            }
        }
    }

    // Segmentation composes with every numeric kernel mode: forcing the
    // kernel never breaks the exact-stitch contract.
    #[test]
    fn segmented_kernel_modes_are_bit_for_bit_identical(
        n in 8usize..32,
        density in 0.1f64..0.8,
        k in 2usize..5,
        seed in 0u64..1000,
    ) {
        let chain = varied_chain(n, &[6, 8, 10], density, seed);
        for mode in MODES {
            let base = BppsaOptions::serial().kernel(mode).segmented(k);
            let depth = base.segmented_up_levels(n + 1);
            let reference =
                PlannedScan::plan(&chain, BppsaOptions::serial().kernel(mode).hybrid(depth))
                    .execute(&chain);
            for exec in [BppsaOptions::serial(), BppsaOptions::pooled()] {
                let plan = PlannedScan::plan(&chain, exec.kernel(mode).segmented(k));
                let result = plan.execute(&chain);
                assert_bits_eq(
                    &result,
                    &reference,
                    &format!("{mode:?}/k={k}/{:?}", exec.executor),
                );
            }
        }
    }

    // Diagonal chains: segmentation requests must route through the
    // elementwise fast path untouched (segments() == 1) and stay exact in
    // every DiagonalMode, including Disabled — which falls back to the CSR
    // program and *does* segment.
    #[test]
    fn segmented_respects_diagonal_modes(
        n in 4usize..64,
        width in 2usize..10,
        k in 2usize..5,
        seed in 0u64..1000,
    ) {
        let chain = diagonal_chain(n, width, seed);
        for mode in [DiagonalMode::Auto, DiagonalMode::Linear, DiagonalMode::Disabled] {
            let opts = BppsaOptions::serial().diagonal(mode).segmented(k);
            let depth = opts.segmented_up_levels(n + 1);
            let reference = PlannedScan::plan(
                &chain,
                BppsaOptions::serial().diagonal(mode).hybrid(depth),
            )
            .execute(&chain);
            for exec in [BppsaOptions::serial(), BppsaOptions::pooled()] {
                let plan = PlannedScan::plan(&chain, exec.diagonal(mode).segmented(k));
                match plan.plan_kind() {
                    PlanKind::Diagonal => prop_assert_eq!(plan.segments(), 1),
                    PlanKind::Csr => prop_assert!(plan.segments() >= 1),
                }
                let result = plan.execute(&chain);
                assert_bits_eq(
                    &result,
                    &reference,
                    &format!("{mode:?}/k={k}/{:?}", exec.executor),
                );
            }
        }
    }
}

/// Short tails are routine for the stitcher: every (len, k) pair in the
/// degenerate corner — including k far beyond the block count — must agree
/// with the unplanned reference.
#[test]
fn degenerate_and_tail_lengths_are_exact() {
    for n in [1usize, 2, 3, 4, 5] {
        let chain = varied_chain(n, &[2, 3, 4], 0.6, 7 + n as u64);
        let reference = bppsa_backward(&chain, BppsaOptions::serial());
        for k in [2usize, 3, 8, 64] {
            for exec in [BppsaOptions::serial(), BppsaOptions::pooled()] {
                let plan = PlannedScan::plan(&chain, exec.segmented(k));
                let diff = plan.execute(&chain).max_abs_diff(&reference);
                assert!(diff < 1e-12, "n={n} k={k}: diff {diff}");
            }
        }
    }
}

/// A segmentation that actually engaged reports consistent observability:
/// block coverage, interface widths, and a narrow interface preferred when
/// one sits near the balanced cut.
#[test]
fn segmentation_observability_is_consistent() {
    // Alternating 1-wide bottlenecks between 12-wide layers: cuts should
    // land on width-1 interfaces (never width-12) wherever feasible.
    let chain = varied_chain(96, &[1, 12, 12, 12], 0.7, 3);
    let plan = PlannedScan::plan(&chain, BppsaOptions::pooled().segmented(4));
    let seg = plan.segmentation().expect("96-layer chain must segment");
    assert_eq!(seg.segments(), plan.segments());
    assert_eq!(seg.interface_widths().len(), seg.segments() - 1);
    let blocks = seg.segment_blocks();
    assert_eq!(blocks.first().unwrap().start, 0);
    assert_eq!(
        blocks.last().unwrap().end,
        plan.schedule().block_roots().len()
    );
    for w in seg.interface_widths() {
        assert!(
            *w <= 12,
            "interface width {w} exceeds the chain's widest layer"
        );
    }
}
