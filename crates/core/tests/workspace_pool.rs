//! Concurrency stress test for [`WorkspacePool`]: `N` threads × `M`
//! checkouts hammering a pool of `K < N` workspaces must
//!
//! 1. never hand the same workspace to two holders at once (checked with a
//!    per-workspace busy flag keyed by [`PooledWorkspace::id`]),
//! 2. never create more than `K` workspaces, and
//! 3. produce gradients **bit-for-bit identical** to the serial
//!    single-workspace path — the compiled program is deterministic, so
//!    which workspace (or thread) runs it must not matter.

use bppsa_core::{BppsaOptions, JacobianChain, PlannedScan, ScanElement, WorkspacePool};
use bppsa_sparse::Csr;
use bppsa_tensor::init::{seeded_rng, uniform_vector};
use bppsa_tensor::Matrix;
use rand::Rng;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

const THREADS: usize = 8;
const CHECKOUTS_PER_THREAD: usize = 50;
const POOL_CAP: usize = 3;

fn sparse_chain(n: usize, width: usize, seed: u64) -> JacobianChain<f64> {
    let mut rng = seeded_rng(seed);
    let mut chain = JacobianChain::new(uniform_vector(&mut rng, width, 1.0));
    for _ in 0..n {
        let dense = Matrix::from_fn(width, width, |_, _| {
            if rng.random_range(0.0..1.0) < 0.35 {
                rng.random_range(-1.0..1.0)
            } else {
                0.0
            }
        });
        chain.push(ScanElement::Sparse(Csr::from_dense(&dense)));
    }
    chain
}

/// Same patterns as `template`, fresh values.
fn revalue(template: &JacobianChain<f64>, seed: u64) -> JacobianChain<f64> {
    let mut rng = seeded_rng(seed);
    let mut chain = JacobianChain::new(uniform_vector(&mut rng, template.seed().len(), 1.0));
    for jt in template.jacobians() {
        let ScanElement::Sparse(m) = jt else {
            unreachable!()
        };
        chain.push(ScanElement::Sparse(
            m.map_values(|_| rng.random_range(-1.0..1.0)),
        ));
    }
    chain
}

#[test]
fn pool_checkouts_are_exclusive_and_bitwise_deterministic() {
    let template = sparse_chain(16, 10, 7);
    let plan = Arc::new(PlannedScan::plan(&template, BppsaOptions::serial()));
    let pool = WorkspacePool::<f64>::new(Arc::clone(&plan), POOL_CAP);

    // A few distinct value sets, shared by all threads, plus the serial
    // single-workspace reference gradients for each.
    let chains: Vec<JacobianChain<f64>> = (0..5).map(|k| revalue(&template, 100 + k)).collect();
    let references: Vec<Vec<Vec<f64>>> = chains
        .iter()
        .map(|chain| {
            let mut ws = plan.workspace::<f64>();
            plan.execute_with(chain, &mut ws)
                .grads()
                .iter()
                .map(|g| g.as_slice().to_vec())
                .collect()
        })
        .collect();

    // One busy flag per possible workspace id: double-checkout would trip
    // the swap assertion.
    let busy: Vec<AtomicBool> = (0..POOL_CAP).map(|_| AtomicBool::new(false)).collect();
    let max_concurrent = AtomicUsize::new(0);
    let in_flight = AtomicUsize::new(0);

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let pool = &pool;
            let plan = &plan;
            let chains = &chains;
            let references = &references;
            let busy = &busy;
            let in_flight = &in_flight;
            let max_concurrent = &max_concurrent;
            s.spawn(move || {
                for m in 0..CHECKOUTS_PER_THREAD {
                    let which = (t * CHECKOUTS_PER_THREAD + m) % chains.len();
                    let mut ws = pool.checkout();
                    let id = ws.id();
                    assert!(id < POOL_CAP, "workspace id {id} beyond the cap");
                    assert!(
                        !busy[id].swap(true, Ordering::SeqCst),
                        "workspace {id} checked out twice concurrently"
                    );
                    let now = in_flight.fetch_add(1, Ordering::SeqCst) + 1;
                    max_concurrent.fetch_max(now, Ordering::SeqCst);

                    let result = plan.execute_with(&chains[which], &mut ws);
                    for (g, expect) in result.grads().iter().zip(&references[which]) {
                        // Bit-for-bit: same compiled program, same rounding,
                        // regardless of workspace or thread.
                        assert_eq!(g.as_slice(), expect.as_slice());
                    }

                    in_flight.fetch_sub(1, Ordering::SeqCst);
                    // Clear the flag before checkin: once the guard drops,
                    // another thread may legitimately receive this id.
                    busy[id].store(false, Ordering::SeqCst);
                    drop(ws);
                }
            });
        }
    });

    assert!(pool.created() <= POOL_CAP, "pool grew past its cap");
    assert_eq!(pool.available(), pool.created(), "every checkout returned");
    // With 8 threads on 3 workspaces the pool must actually have been
    // contended *and* shared (more than one workspace in flight at once is
    // not guaranteed on a 1-core box, but creation ≥ 1 is).
    assert!(pool.created() >= 1);
}

/// Batched execution over a *segmented* plan: every batch item's driver is
/// itself a pool task whose segment fan-outs publish nested batches — the
/// multi-header pool must compose them without deadlock, the pooled
/// workspaces must carry the segmented plan's (single-lane) scratch sizing,
/// and the results must stay bit-for-bit with the serial single-workspace
/// path.
#[test]
fn batched_backward_composes_with_segmented_plans() {
    use bppsa_core::BatchedBackward;

    let template = sparse_chain(64, 10, 19);
    let plan = Arc::new(PlannedScan::plan(
        &template,
        BppsaOptions::pooled().segmented(2),
    ));
    assert!(plan.segments() >= 2, "64-layer chain must segment");

    let chains: Vec<JacobianChain<f64>> = (0..6).map(|s| revalue(&template, 70 + s)).collect();
    let references: Vec<Vec<Vec<f64>>> = chains
        .iter()
        .map(|chain| {
            let serial = PlannedScan::plan(&template, BppsaOptions::serial().segmented(2));
            let mut ws = serial.workspace::<f64>();
            serial
                .execute_with(chain, &mut ws)
                .grads()
                .iter()
                .map(|g| g.as_slice().to_vec())
                .collect()
        })
        .collect();

    let batched = BatchedBackward::with_capacity(Arc::clone(&plan), 3);
    batched.prewarm(chains.len());
    for _round in 0..3 {
        let seen = AtomicUsize::new(0);
        batched.execute(&chains, &|i, result| {
            seen.fetch_add(1, Ordering::SeqCst);
            for (g, expect) in result.grads().iter().zip(&references[i]) {
                assert_eq!(g.as_slice(), expect.as_slice(), "chain {i}");
            }
        });
        assert_eq!(seen.load(Ordering::SeqCst), chains.len());
    }
}
