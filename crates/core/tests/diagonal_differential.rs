//! Differential suite for the diagonal elementwise fast path.
//!
//! The contract under test (see `ARCHITECTURE.md`, "Diagonal fast path"):
//! replaying the *same* `ScanSchedule` with elementwise multiplies produces
//! the exact per-lane expression tree the generic CSR program evaluates, so
//! the **linear kernel is bit-for-bit identical** to the generic plan — not
//! merely "close". The **log-space kernel** reassociates through `ln`/`exp`
//! and is held to a tight relative bound instead.
//!
//! Random cases sweep widths, lengths, hybrid schedules, and coefficient
//! classes (signed, exact zeros, denormal-adjacent magnitudes, near-one);
//! deterministic edges pin width-1 chains, wide-short and narrow-long
//! shapes, and the width-gated fan-out policy at length 10⁶.

use bppsa_core::{
    bppsa_backward, BackwardResult, BppsaOptions, DiagonalKernel, DiagonalMode, JacobianChain,
    PlannedScan, ScanElement,
};
use bppsa_sparse::Csr;
use bppsa_tensor::init::seeded_rng;
use bppsa_tensor::Vector;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::Rng;

/// One diagonal coefficient, drawn from a mixture that stresses every
/// numeric regime the kernels must agree on: plain signed values, exact
/// zeros (annihilating lanes), denormal-adjacent magnitudes (underflow in
/// the linear kernel, deep-negative logs in the log kernel), and near-one
/// values (catastrophic cancellation in log space).
fn coefficient(rng: &mut StdRng) -> f64 {
    match rng.random_range(0..10usize) {
        0 => 0.0,
        1 => rng.random_range(-1e-300..1e-300),
        2 => {
            let sign = if rng.random::<bool>() { 1.0 } else { -1.0 };
            sign * (1.0 + rng.random_range(-1e-8..1e-8))
        }
        _ => rng.random_range(-2.0..2.0),
    }
}

/// A length-`n` diagonal-Jacobian chain of the given width with mixed-class
/// coefficients and a uniform seed gradient.
fn diagonal_chain(rng: &mut StdRng, n: usize, width: usize) -> JacobianChain<f64> {
    let seed = bppsa_tensor::init::uniform_vector(rng, width, 1.0);
    let mut chain = JacobianChain::new(seed);
    for _ in 0..n {
        let diag: Vec<f64> = (0..width).map(|_| coefficient(rng)).collect();
        chain.push(ScanElement::Sparse(Csr::from_diagonal(&diag)));
    }
    chain
}

/// Asserts two results are **bit-for-bit** equal — every lane of every
/// gradient compares by `to_bits`, so infinities and signed zeros must match
/// exactly too (a plain `max_abs_diff == 0` would treat `inf - inf = NaN`
/// as a difference and `-0.0` vs `0.0` as equal for the wrong reason).
fn assert_bit_for_bit(fast: &BackwardResult<f64>, reference: &BackwardResult<f64>, what: &str) {
    assert_eq!(fast.grads().len(), reference.grads().len(), "{what}: arity");
    for (i, (a, b)) in fast.grads().iter().zip(reference.grads()).enumerate() {
        for (k, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
            assert!(
                x.to_bits() == y.to_bits(),
                "{what}: grad {i} lane {k}: {x:e} vs {y:e}"
            );
        }
    }
}

/// Log-space tolerance: `ln`/`exp` round once per combine, so after the
/// schedule's `O(log n)` (or hybrid `O(n)`) combines the relative error is
/// comfortably below 1e-6 for the sizes swept here. The absolute floor
/// absorbs the subnormal zone, where the linear kernel's gradual underflow
/// and the log kernel's `exp` of a deep-negative sum round differently.
fn assert_log_close(fast: &BackwardResult<f64>, reference: &BackwardResult<f64>, what: &str) {
    const REL: f64 = 1e-6;
    const ABS_FLOOR: f64 = 1e-280;
    assert_eq!(fast.grads().len(), reference.grads().len(), "{what}: arity");
    for (i, (a, b)) in fast.grads().iter().zip(reference.grads()).enumerate() {
        for (k, (&x, &y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
            let tol = REL * x.abs().max(y.abs()) + ABS_FLOOR;
            assert!(
                (x - y).abs() <= tol,
                "{what}: grad {i} lane {k}: {x:e} vs {y:e} (tol {tol:e})"
            );
        }
    }
}

/// Plans `chain` under `mode`, asserting the plan actually took (or
/// avoided) the diagonal program, and executes it.
fn run_planned(
    chain: &JacobianChain<f64>,
    opts: BppsaOptions,
    mode: DiagonalMode,
    expect: Option<DiagonalKernel>,
) -> BackwardResult<f64> {
    let plan = PlannedScan::plan(chain, opts.diagonal(mode));
    assert_eq!(plan.diagonal_kernel(), expect, "plan kind under {mode:?}");
    plan.execute(chain)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // Linear kernel ≡ generic CSR plan, bit for bit, across random widths,
    // lengths, hybrid depths, and coefficient classes. The unplanned
    // executor is held to the same standard: it walks the same schedule
    // with one sparse product per combine.
    #[test]
    fn linear_kernel_is_bit_for_bit(
        n in 1usize..257,
        width in 1usize..33,
        k in 0usize..6,
        seed in proptest::num::u64::ANY,
    ) {
        let chain = diagonal_chain(&mut seeded_rng(seed), n, width);
        let opts = BppsaOptions::serial().hybrid(k);
        let fast = run_planned(&chain, opts, DiagonalMode::Linear, Some(DiagonalKernel::Linear));
        let generic = run_planned(&chain, opts, DiagonalMode::Disabled, None);
        assert_bit_for_bit(&fast, &generic, "planned CSR");
        let unplanned = bppsa_backward(&chain, opts.diagonal(DiagonalMode::Disabled));
        assert_bit_for_bit(&fast, &unplanned, &format!("unplanned n={n} w={width} k={k} seed={seed}"));
    }

    // Log-space kernel stays within a tight relative bound of the generic
    // plan on the same chains the linear sweep covers.
    #[test]
    fn log_space_kernel_matches_generic_tightly(
        n in 1usize..257,
        width in 1usize..33,
        k in 0usize..6,
        seed in proptest::num::u64::ANY,
    ) {
        let chain = diagonal_chain(&mut seeded_rng(seed), n, width);
        let opts = BppsaOptions::serial().hybrid(k);
        let log = run_planned(&chain, opts, DiagonalMode::LogSpace, Some(DiagonalKernel::LogSpace));
        let generic = run_planned(&chain, opts, DiagonalMode::Disabled, None);
        assert_log_close(&log, &generic, "log-space vs CSR");
    }

    // Level fan-out never changes the math: a pooled plan is bit-for-bit
    // identical to the serial generic plan (each instruction touches
    // disjoint lane ranges, so splitting a stage reorders nothing).
    #[test]
    fn pooled_execution_is_bit_for_bit(
        n in 1usize..129,
        width in 8usize..65,
        seed in proptest::num::u64::ANY,
    ) {
        let chain = diagonal_chain(&mut seeded_rng(seed), n, width);
        let pooled = run_planned(
            &chain,
            BppsaOptions::pooled(),
            DiagonalMode::Linear,
            Some(DiagonalKernel::Linear),
        );
        let generic = run_planned(&chain, BppsaOptions::serial(), DiagonalMode::Disabled, None);
        assert_bit_for_bit(&pooled, &generic, "pooled");
    }
}

/// Deterministic edge shapes the random sweep is unlikely to pin exactly:
/// width 1 (never fans out), wide-and-short, narrow-and-long, and
/// power-of-two ± 1 lengths around schedule phase boundaries.
#[test]
fn edge_shapes_are_bit_for_bit() {
    let cases: &[(usize, usize)] = &[
        (1, 1),
        (2, 1),
        (3, 1),
        (1024, 1),
        (33, 256),
        (4096, 8),
        (31, 7),
        (32, 7),
        (33, 7),
        (255, 16),
        (256, 16),
        (257, 16),
    ];
    for &(n, width) in cases {
        let chain = diagonal_chain(&mut seeded_rng(n as u64 ^ (width as u64) << 32), n, width);
        for k in [0usize, 3] {
            let opts = BppsaOptions::serial().hybrid(k);
            let fast = run_planned(
                &chain,
                opts,
                DiagonalMode::Linear,
                Some(DiagonalKernel::Linear),
            );
            let generic = run_planned(&chain, opts, DiagonalMode::Disabled, None);
            assert_bit_for_bit(&fast, &generic, &format!("n={n} w={width} k={k}"));
            let log = run_planned(
                &chain,
                opts,
                DiagonalMode::LogSpace,
                Some(DiagonalKernel::LogSpace),
            );
            assert_log_close(&log, &generic, &format!("log n={n} w={width} k={k}"));
        }
    }
}

/// Exact zeros and denormal-adjacent coefficients: the linear kernel must
/// reproduce the generic plan's signed zeros and gradual underflow bit for
/// bit, and the log kernel must send annihilated lanes to exactly zero.
#[test]
fn zero_and_denormal_lanes_are_exact() {
    let seed = Vector::from_vec(vec![1.0, -1.0, 0.5, -0.5, 2.0, -2.0]);
    let mut chain = JacobianChain::new(seed);
    let diags: &[[f64; 6]] = &[
        [1.0, -1.0, 0.0, 1e-300, -1e-300, 5e-324],
        [0.0, 2.0, -3.0, 1e-300, 1.0, -1.0],
        [-1.0, -0.0, 1.5, -1e300, 1e-300, 0.0],
        [0.25, 4.0, -0.5, 1e-300, -2.0, 1.0],
    ];
    for d in diags {
        chain.push(ScanElement::Sparse(Csr::from_diagonal(d)));
    }
    let opts = BppsaOptions::serial();
    let fast = run_planned(
        &chain,
        opts,
        DiagonalMode::Linear,
        Some(DiagonalKernel::Linear),
    );
    let generic = run_planned(&chain, opts, DiagonalMode::Disabled, None);
    assert_bit_for_bit(&fast, &generic, "zero/denormal");

    let log = run_planned(
        &chain,
        opts,
        DiagonalMode::LogSpace,
        Some(DiagonalKernel::LogSpace),
    );
    assert_log_close(&log, &generic, "log zero/denormal");
    // Any lane that passed through a zero coefficient is exactly zero in
    // both kernels (the log kernel carries a separate sign plane, so a zero
    // is a hard 0, not exp(-inf) noise).
    for (g_log, g_lin) in log.grads().iter().zip(fast.grads()) {
        for (&x, &y) in g_log.as_slice().iter().zip(g_lin.as_slice()) {
            if y == 0.0 {
                assert_eq!(x, 0.0, "annihilated lane must be exactly zero");
            }
        }
    }
}

/// Satellite: width-based chunking. A width-1 chain of one million layers
/// plans in O(width) memory per combine and must never fan out — the plan
/// reports a single level task even when offered 16 workers — while still
/// producing exact results (coefficients are powers of two, so the linear
/// kernel is exact against a sequentially-computed suffix product).
#[test]
fn width_one_by_one_million_runs_single_worker() {
    const N: usize = 1_000_000;
    let cycle = [1.0f64, -1.0, 0.5, 2.0];
    let pattern = Csr::from_diagonal(&[1.0f64]).pattern();
    let mut chain = JacobianChain::new(Vector::from_vec(vec![3.0f64]));
    for i in 0..N {
        chain.push(ScanElement::Sparse(Csr::from_pattern_and_values(
            pattern.clone(),
            vec![cycle[i % cycle.len()]],
        )));
    }

    let plan = PlannedScan::plan(
        &chain,
        BppsaOptions::serial().diagonal(DiagonalMode::Linear),
    );
    assert_eq!(plan.diagonal_kernel(), Some(DiagonalKernel::Linear));
    assert_eq!(
        plan.diagonal_level_fanout(16),
        Some(1),
        "width-1 chains must never fan out"
    );

    let result = plan.execute(&chain);
    // grads[i] = ∇x_{i+1} = (∏_{j=i+2..=N} c_j) · seed — exact in f64 for
    // powers of two. With suffix[m] = ∏_{p=m..N-1} cycle[p % 4], that is
    // suffix[i + 1] · seed.
    let mut suffix = vec![1.0f64; N + 1];
    for i in (0..N).rev() {
        suffix[i] = suffix[i + 1] * cycle[i % cycle.len()];
    }
    assert_eq!(result.grads().len(), N);
    for (i, g) in result.grads().iter().enumerate() {
        assert_eq!(g.as_slice(), &[suffix[i + 1] * 3.0], "grad {i}");
    }
}
