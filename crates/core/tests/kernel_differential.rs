//! Differential suite for the numeric kernel modes: every forced
//! [`KernelMode`] (and `Auto`'s per-combine mix) must produce **bit-for-bit
//! identical** gradients — same signed-zero canonicalization contract the
//! diagonal fast path pins — under both the serial and pooled executors,
//! and stay within fp-reassociation distance of the unplanned reference.
//!
//! The contract being exercised (see `bppsa-sparse`'s `kernel` module): all
//! three numeric kernels accumulate each output element's structural terms
//! in the identical order with the identical leading `0 + av·bv`
//! canonicalization, and the dense panel kernel's extra structural-zero
//! terms are exact no-ops for finite operands. `Auto` therefore never
//! changes results — only throughput.

use bppsa_core::{
    bppsa_backward, BackwardResult, BppsaOptions, JacobianChain, KernelMode, NumericKernel,
    PlanKind, PlannedScan, ScanElement,
};
use bppsa_sparse::Csr;
use bppsa_tensor::init::{seeded_rng, uniform_vector};
use bppsa_tensor::Matrix;
use proptest::prelude::*;
use rand::Rng;

/// Random CSR chain: `n` square layers of the given width and density.
fn sparse_chain(n: usize, width: usize, density: f64, seed: u64) -> JacobianChain<f64> {
    let mut rng = seeded_rng(seed);
    let mut chain = JacobianChain::new(uniform_vector(&mut rng, width, 1.0));
    for _ in 0..n {
        let dense = Matrix::from_fn(width, width, |_, _| {
            if rng.random_range(0.0..1.0) < density {
                rng.random_range(-1.0..1.0)
            } else {
                0.0
            }
        });
        chain.push(ScanElement::Sparse(Csr::from_dense(&dense)));
    }
    chain
}

/// Bit-level equality of two results, including the sign of exact zeros.
fn assert_bits_eq(got: &BackwardResult<f64>, want: &BackwardResult<f64>, what: &str) {
    assert_eq!(got.grads().len(), want.grads().len(), "{what}: layer count");
    for (i, (g, w)) in got.grads().iter().zip(want.grads()).enumerate() {
        for (j, (x, y)) in g.as_slice().iter().zip(w.as_slice()).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{what}: grads[{i}][{j}] = {x:?} vs {y:?}"
            );
        }
    }
}

const MODES: [KernelMode; 4] = [
    KernelMode::Auto,
    KernelMode::Gather,
    KernelMode::Gustavson,
    KernelMode::Dense,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // All kernel modes, serial and pooled, produce bit-identical gradients
    // (reference: the forced gather program — the pre-refactor numeric
    // path) and agree with the unplanned backward to fp tolerance.
    #[test]
    fn kernel_modes_are_bit_for_bit_identical(
        n in 1usize..20,
        width in 2usize..14,
        density in 0.05f64..0.9,
        seed in 0u64..1000,
    ) {
        let chain = sparse_chain(n, width, density, seed);
        let reference = PlannedScan::plan(&chain, BppsaOptions::serial().kernel(KernelMode::Gather))
            .execute(&chain);
        let unplanned = bppsa_backward(&chain, BppsaOptions::serial());
        prop_assert!(reference.max_abs_diff(&unplanned) < 1e-12);
        for mode in MODES {
            for opts in [BppsaOptions::serial(), BppsaOptions::pooled()] {
                let plan = PlannedScan::plan(&chain, opts.kernel(mode));
                prop_assert_eq!(plan.plan_kind(), PlanKind::Csr);
                let mut ws = plan.workspace::<f64>();
                // Twice through the same workspace: first pass from pristine
                // buffers, second from dirty ones (the steady state).
                for round in 0..2 {
                    let result = plan.execute_with(&chain, &mut ws).clone();
                    assert_bits_eq(
                        &result,
                        &reference,
                        &format!("{mode:?}/{:?} round {round}", opts.executor),
                    );
                }
            }
        }
    }
}

/// `Auto`'s per-combine selection actually mixes kernels on a densifying
/// chain (the selection is observable, not vacuous), and the recorded
/// counts reconcile with the planned product count.
#[test]
fn auto_mode_mixes_kernels_and_counts_reconcile() {
    // 0.15-density 16-wide layers: raw Jacobians sit below the 0.25 dense
    // threshold, but up-sweep products densify past it, so Auto picks
    // different kernels at different tree levels.
    let chain = sparse_chain(12, 16, 0.15, 42);
    let auto = PlannedScan::plan(&chain, BppsaOptions::serial());
    let counts = auto.kernel_counts();
    assert_eq!(counts.total(), auto.planned_products());
    assert!(counts.total() > 0, "chain must hoist products");
    assert!(
        counts.dense > 0,
        "densified products must resolve to the dense kernel: {counts:?}"
    );
    assert!(
        counts.dense < counts.total(),
        "raw-Jacobian combines must stay on a sparse kernel: {counts:?}"
    );

    // Forced modes pin every combine, and the counts say so.
    for (mode, expect) in [
        (KernelMode::Gather, NumericKernel::Gather),
        (KernelMode::Gustavson, NumericKernel::Gustavson),
        (KernelMode::Dense, NumericKernel::Dense),
    ] {
        let plan = PlannedScan::plan(&chain, BppsaOptions::serial().kernel(mode));
        let counts = plan.kernel_counts();
        let forced = match expect {
            NumericKernel::Gather => counts.gather,
            NumericKernel::Gustavson => counts.gustavson,
            NumericKernel::Dense => counts.dense,
        };
        assert_eq!(forced, counts.total(), "{mode:?} must pin every combine");
        assert_eq!(counts.total(), auto.planned_products());
    }
}

/// The dense panel kernel's workspace really is pre-sized: its scratch
/// bytes show up in the plan's workspace accounting, and a narrow chain
/// (below `KERNEL_DENSE_MIN_COLS`) never selects it under `Auto`.
#[test]
fn dense_selection_respects_width_gate_and_sizes_workspace() {
    let narrow = sparse_chain(10, 4, 0.9, 7);
    let counts = PlannedScan::plan(&narrow, BppsaOptions::serial()).kernel_counts();
    assert_eq!(
        counts.dense, 0,
        "4-wide operands are below the dense width gate: {counts:?}"
    );

    let wide = sparse_chain(10, 16, 0.5, 8);
    let gather_bytes = PlannedScan::plan(&wide, BppsaOptions::serial().kernel(KernelMode::Gather))
        .workspace_bytes::<f64>();
    let dense_bytes = PlannedScan::plan(&wide, BppsaOptions::serial().kernel(KernelMode::Dense))
        .workspace_bytes::<f64>();
    assert!(
        dense_bytes > gather_bytes,
        "dense plans carry panel + accumulator scratch ({dense_bytes} vs {gather_bytes} bytes)"
    );
}
