//! Integration tests at the paper's actual scales (T up to 30000): the
//! schedule machinery, the executors, and the memory accounting must all
//! behave at Figure 10's largest configurations, not just at toy sizes.

use bppsa::prelude::*;

/// A cheap associative non-commutative op for scale tests (2×2 wrapping
/// integer matrices — exact arithmetic, no fp tolerance needed).
struct M2Mul;
impl ScanOp<[i64; 4]> for M2Mul {
    fn combine(&self, a: &[i64; 4], b: &[i64; 4]) -> [i64; 4] {
        [
            a[0].wrapping_mul(b[0])
                .wrapping_add(a[1].wrapping_mul(b[2])),
            a[0].wrapping_mul(b[1])
                .wrapping_add(a[1].wrapping_mul(b[3])),
            a[2].wrapping_mul(b[0])
                .wrapping_add(a[3].wrapping_mul(b[2])),
            a[2].wrapping_mul(b[1])
                .wrapping_add(a[3].wrapping_mul(b[3])),
        ]
    }
    fn identity(&self) -> [i64; 4] {
        [1, 0, 0, 1]
    }
}

#[test]
fn schedule_at_t30000_has_paper_complexities() {
    // Figure 10's largest sweep point: 30001 scan elements.
    let s = ScanSchedule::full(30001);
    s.assert_levels_disjoint();
    // Θ(log n) steps: ⌈log₂ 30001⌉ = 15 levels each way.
    assert_eq!(s.up_levels().len(), 14);
    assert_eq!(s.down_levels().len(), 14);
    assert!(s.step_count() <= 2 * 15 + 2);
    // Θ(n) work (Equation 7).
    assert!(s.combine_count() < 2 * 30001);
}

#[test]
fn pooled_scan_is_exact_at_t30000() {
    let items: Vec<[i64; 4]> = (0..30001i64)
        .map(|i| [i % 5 - 2, (i * 3) % 7 - 3, (i * 5) % 3 - 1, i % 4 - 1])
        .collect();
    let expect = serial_exclusive_scan(&M2Mul, &items);
    let mut a = items.clone();
    execute_in_place(
        &ScanSchedule::full(items.len()),
        &M2Mul,
        &mut a,
        Executor::Pooled,
    );
    assert_eq!(a, expect);
}

#[test]
fn hybrid_cutoffs_exact_at_scale() {
    let items: Vec<[i64; 4]> = (0..4097i64).map(|i| [1, i % 9 - 4, 0, 1]).collect();
    let expect = serial_exclusive_scan(&M2Mul, &items);
    for k in [0usize, 3, 7, 12] {
        let mut a = items.clone();
        execute_in_place(
            &ScanSchedule::with_up_levels(items.len(), k),
            &M2Mul,
            &mut a,
            Executor::Pooled,
        );
        assert_eq!(a, expect, "k={k}");
    }
}

#[test]
fn rnn_chain_memory_matches_paper_space_model() {
    // §3.6: per-worker space is Θ(max(n/p, 1))·M_Jacob. Build the paper's
    // T=1000 h=20 chain and check the accounting against first principles.
    let rnn = VanillaRnn::<f32>::new(1, 20, 10, &mut seeded_rng(1));
    let data = BitstreamDataset::<f32>::generate(1, 1000, 2);
    let states = rnn.forward(&data.sample(0).bits);
    let (_, seed, _) = rnn.loss_and_seed(&states, 0);
    let chain = rnn.build_chain(&states, &seed);
    assert_eq!(chain.num_layers(), 1000);
    // Dense 20×20 f32 Jacobians: 1600 bytes each.
    assert_eq!(chain.max_element_bytes(), 20 * 20 * 4);
    let expected_total = 20 * 4 + 1000 * 20 * 20 * 4;
    assert_eq!(chain.memory_bytes(), expected_total);
    // Per-device at p = 2070's worker count: ⌈1001/576⌉ = 2 Jacobians.
    let per_dev = bppsa::pram::memory::bppsa_per_device_bytes(
        1001,
        DeviceProfile::rtx_2070().workers(),
        chain.max_element_bytes(),
    );
    assert_eq!(per_dev, 2 * 1600);
}

#[test]
fn planned_scan_matches_generic_on_conv_chain() {
    // PlannedScan on a real (pruned) conv/relu chain — the §4.2 retraining
    // shape — must agree with the generic executor.
    use bppsa::models::prune::prune_operator;
    let mut rng = seeded_rng(3);
    let (hw, ch) = (6usize, 4usize);
    let mut chain_elems = Vec::new();
    let mut x = bppsa::tensor::init::uniform_tensor::<f64>(&mut rng, vec![ch, hw, hw], 1.0);
    for _ in 0..6 {
        let mut conv = Conv2d::new(Conv2dConfig::vgg_style(ch, ch, (hw, hw)), &mut rng);
        prune_operator(&mut conv, 0.8);
        let y = conv.forward(&x);
        chain_elems.push(ScanElement::Sparse(conv.transposed_jacobian_pruned()));
        let relu = Relu::new(vec![ch, hw, hw]);
        let y_relu = Operator::<f64>::forward(&relu, &y);
        chain_elems.push(ScanElement::Sparse(relu.transposed_jacobian(&y, &y_relu)));
        x = y_relu;
    }
    let mut chain = JacobianChain::new(bppsa::tensor::init::uniform_vector(
        &mut rng,
        ch * hw * hw,
        1.0,
    ));
    for e in chain_elems {
        chain.push(e);
    }

    let generic = bppsa_backward(&chain, BppsaOptions::serial());
    for opts in [BppsaOptions::serial(), BppsaOptions::pooled()] {
        let plan = PlannedScan::plan(&chain, opts);
        assert!(plan.planned_products() > 0);
        let planned = plan.execute(&chain);
        let diff = generic.max_abs_diff(&planned);
        assert!(diff < 1e-10, "{opts:?}: diff {diff}");
    }
}

#[test]
fn gru_scan_agrees_with_bptt_at_depth() {
    // The GRU extension at a nontrivial depth, pooled executor.
    let g = Gru::<f64>::new(6, 4, &mut seeded_rng(5));
    let xs: Vec<f64> = (0..500)
        .map(|i| ((i * 7) % 13) as f64 / 13.0 - 0.5)
        .collect();
    let steps = g.forward(&xs);
    let (_, seed) = g.loss_and_seed(&steps, 2);
    let bptt = g.hidden_grads_bptt(&steps, &seed);
    let scan = g.hidden_grads_bppsa(&steps, &seed, BppsaOptions::pooled());
    for (t, (a, b)) in bptt.iter().zip(&scan).enumerate() {
        let diff = a.max_abs_diff(b);
        assert!(diff < 1e-8, "t={t}: diff {diff}");
    }
}
