//! Integration tests for the §3.5 convergence claim: training *via BPPSA*
//! follows the baseline's trajectory exactly, on both model families, and
//! the losses actually go down (the experiment is meaningful).

use bppsa::models::train::{
    evaluate_network, evaluate_rnn, train_network_classifier, train_rnn, BackwardMethod,
};
use bppsa::prelude::*;

#[test]
fn lenet_trajectories_overlap_and_descend() {
    let data = SyntheticCifar::<f32>::generate(48, 8, 0.15, 21);
    let run = |method: BackwardMethod| {
        let mut net = lenet_tiny::<f32>(&mut seeded_rng(22));
        let mut opts = bppsa::models::train::sgd_per_layer(&net, 0.03, 0.9);
        let log = train_network_classifier(&mut net, &data, &mut opts, method, 12, 15, None);
        (log, evaluate_network(&net, &data))
    };
    let (bp_log, bp_acc) = run(BackwardMethod::Bp);
    let (scan_log, scan_acc) = run(BackwardMethod::Bppsa {
        opts: BppsaOptions::serial(),
        repr: JacobianRepr::Sparse,
    });

    // Figure 7's two claims: curves overlap, and learning happens.
    let gap = bp_log.max_loss_gap(&scan_log);
    assert!(gap < 1e-3, "curves diverged: {gap}");
    assert!(
        bp_log.final_loss() < bp_log.records[0].loss * 0.9,
        "no learning: {} → {}",
        bp_log.records[0].loss,
        bp_log.final_loss()
    );
    assert!((bp_acc - scan_acc).abs() < 0.05, "{bp_acc} vs {scan_acc}");
}

#[test]
fn rnn_trajectories_overlap_with_adam() {
    // §2.2: BPPSA is optimizer-agnostic because gradients are exact — the
    // paper's RNN uses Adam, whose momentum would amplify any staleness.
    let data = BitstreamDataset::<f32>::generate(32, 48, 23);
    let run = |method: BackwardMethod| {
        let mut rnn = VanillaRnn::<f32>::new(1, 16, 10, &mut seeded_rng(24));
        let mut opt = Adam::new(2e-3);
        train_rnn(&mut rnn, &data, &mut opt, method, 8, 6, None)
    };
    let bptt = run(BackwardMethod::Bp);
    let scan = run(BackwardMethod::bppsa_threaded(4));
    assert!(bptt.max_loss_gap(&scan) < 1e-3);
}

#[test]
fn rnn_learns_the_bitstream_task() {
    // The Equation-8 task is learnable: a trained RNN clears chance (10%)
    // comfortably on its training set.
    let data = BitstreamDataset::<f32>::generate(80, 96, 25);
    let mut rnn = VanillaRnn::<f32>::new(1, 20, 10, &mut seeded_rng(26));
    let mut opt = Adam::new(5e-3);
    let log = train_rnn(&mut rnn, &data, &mut opt, BackwardMethod::Bp, 16, 40, None);
    let acc = evaluate_rnn(&rnn, &data);
    assert!(
        acc > 0.3,
        "accuracy {acc} too close to chance (loss {} → {})",
        log.records[0].loss,
        log.final_loss()
    );
}

#[test]
fn sgd_momentum_training_is_deterministic() {
    // Identical seeds → bit-identical logs (required for Figure 7's overlap
    // to be meaningful rather than coincidental).
    let data = SyntheticCifar::<f32>::generate(16, 8, 0.2, 27);
    let run = || {
        let mut net = lenet_tiny::<f32>(&mut seeded_rng(28));
        let mut opts = bppsa::models::train::sgd_per_layer(&net, 0.01, 0.9);
        train_network_classifier(&mut net, &data, &mut opts, BackwardMethod::Bp, 8, 2, None)
    };
    let (a, b) = (run(), run());
    assert_eq!(a.records.len(), b.records.len());
    for (x, y) in a.records.iter().zip(&b.records) {
        assert_eq!(x.loss, y.loss);
    }
}
