//! Property-based end-to-end tests: random networks and random chains must
//! satisfy BP ≡ BPPSA under every schedule, and the FLOP analysis must be
//! consistent with execution.

use bppsa::core::flops::{analyze_scan_flops, total_flops};
use bppsa::prelude::*;
use proptest::prelude::*;

/// A random dense Jacobian chain with arbitrary layer widths.
fn arb_chain() -> impl Strategy<Value = JacobianChain<f64>> {
    (
        proptest::collection::vec(1usize..6, 1..20),
        proptest::num::u64::ANY,
    )
        .prop_map(|(dims_tail, seed)| {
            let mut rng = seeded_rng(seed);
            let mut dims = vec![3usize];
            dims.extend(dims_tail);
            let n = dims.len() - 1;
            let mut chain =
                JacobianChain::new(bppsa::tensor::init::uniform_vector(&mut rng, dims[n], 1.0));
            for i in 0..n {
                chain.push(ScanElement::Dense(bppsa::tensor::init::uniform_matrix(
                    &mut rng,
                    dims[i],
                    dims[i + 1],
                    1.0,
                )));
            }
            chain
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn random_chains_scan_equals_linear(chain in arb_chain(), k in 0usize..6, threads in 1usize..5) {
        let reference = linear_backward(&chain);
        let opts = BppsaOptions {
            executor: if threads == 1 { Executor::Serial } else { Executor::Threaded(threads) },
            ..BppsaOptions::serial().hybrid(k)
        };
        let scanned = bppsa_backward(&chain, opts);
        let diff = reference.max_abs_diff(&scanned);
        prop_assert!(diff < 1e-8, "diff {diff}");
    }

    #[test]
    fn flop_analysis_is_schedule_consistent(chain in arb_chain(), k in 0usize..6) {
        // The analyzer's record count never exceeds the schedule's combines,
        // every record has flops ≤ 2·dense m·n·k, and per-level criticals
        // exist whenever the level recorded anything.
        let opts = BppsaOptions::serial().hybrid(k);
        let records = analyze_scan_flops(&chain, opts);
        let schedule = opts.schedule(chain.num_layers() + 1);
        prop_assert!(records.len() <= schedule.combine_count());
        for r in &records {
            prop_assert!(r.flops <= 2 * r.dense_mnk, "flops {} > 2*mnk {}", r.flops, r.dense_mnk);
        }
        // Dense chains: FLOPs are exactly 2·mnk for every step.
        prop_assert_eq!(
            total_flops(&records),
            records.iter().map(|r| 2 * r.dense_mnk).sum::<u64>()
        );
    }

    #[test]
    fn sparse_and_dense_representations_agree(chain in arb_chain()) {
        // Convert the dense chain to CSR; both must produce the same result.
        let mut sparse = JacobianChain::new(chain.seed().clone());
        for jt in chain.jacobians() {
            if let ScanElement::Dense(m) = jt {
                sparse.push(ScanElement::Sparse(Csr::from_dense(m)));
            }
        }
        let gd = bppsa_backward(&chain, BppsaOptions::serial());
        let gs = bppsa_backward(&sparse, BppsaOptions::serial());
        prop_assert!(gd.max_abs_diff(&gs) < 1e-9);
    }

    #[test]
    fn random_mlp_bp_equals_bppsa(
        widths in proptest::collection::vec(1usize..10, 1..6),
        seed in proptest::num::u64::ANY,
    ) {
        let mut rng = seeded_rng(seed);
        let mut net = Network::<f64>::new();
        let mut prev = 4usize;
        for (i, &w) in widths.iter().enumerate() {
            net.push(Box::new(Linear::new(prev, w, &mut rng)));
            if i % 2 == 0 {
                net.push(Box::new(Relu::new(vec![w])));
            } else {
                net.push(Box::new(Tanh::new(vec![w])));
            }
            prev = w;
        }
        let x = bppsa::tensor::init::uniform_tensor(&mut rng, vec![4], 1.0);
        let tape = net.forward(&x);
        let g = bppsa::tensor::init::uniform_vector(&mut rng, prev, 1.0);
        let bp = net.backward_bp(&tape, &g);
        let scan = net.backward_bppsa(&tape, &g, JacobianRepr::Sparse, BppsaOptions::serial());
        let diff = bp.max_abs_diff(&scan);
        prop_assert!(diff < 1e-9, "diff {diff}");
    }
}
