//! Integration tests pinning the *shapes* of the paper's figures: the
//! qualitative claims each plot makes must hold in our reproduction.

use bppsa::pipeline::{GpipeConfig, PipedreamConfig};
use bppsa::pram::memory::{bppsa_per_device_bytes, pipeline_per_device_bytes};
use bppsa::prelude::*;

fn backward_speedup(t: usize, b: usize, d: &DeviceProfile) -> f64 {
    simulate_speedups(
        &RnnWorkload {
            seq_len: t,
            batch: b,
            hidden: 20,
        },
        d,
    )
    .backward
}

fn overall_speedup(t: usize, b: usize, d: &DeviceProfile) -> f64 {
    simulate_speedups(
        &RnnWorkload {
            seq_len: t,
            batch: b,
            hidden: 20,
        },
        d,
    )
    .overall
}

#[test]
fn fig10a_speedup_rises_with_t_then_saturates() {
    let d = DeviceProfile::rtx_2070();
    let sweep: Vec<f64> = [10, 30, 100, 300, 1000, 3000, 10000, 30000]
        .iter()
        .map(|&t| backward_speedup(t, 16, &d))
        .collect();
    // Monotone rise over the sweep …
    assert!(sweep.windows(2).all(|w| w[1] >= w[0] * 0.95), "{sweep:?}");
    // … crossing 1× somewhere in the low hundreds …
    assert!(sweep[1] < 1.0 && sweep[3] > 1.0, "{sweep:?}");
    // … and saturating: last two points within 10%.
    assert!(sweep[7] / sweep[6] < 1.1, "{sweep:?}");
}

#[test]
fn fig10_headline_numbers_in_band() {
    // Paper §5.1 at T=1000, B=16, RTX 2070: 4.53× backward, 2.17× overall.
    let d = DeviceProfile::rtx_2070();
    let bwd = backward_speedup(1000, 16, &d);
    let ovr = overall_speedup(1000, 16, &d);
    assert!((3.0..7.0).contains(&bwd), "backward {bwd} not in band");
    assert!((1.5..3.5).contains(&ovr), "overall {ovr} not in band");
    assert!(ovr < bwd);
}

#[test]
fn fig10c_speedup_monotone_decreasing_in_batch() {
    for d in [DeviceProfile::rtx_2070(), DeviceProfile::rtx_2080ti()] {
        let sweep: Vec<f64> = [256, 128, 64, 32, 16, 8, 4, 2]
            .iter()
            .map(|&b| backward_speedup(1000, b, &d))
            .collect();
        assert!(
            sweep.windows(2).all(|w| w[1] > w[0]),
            "{}: {sweep:?}",
            d.name
        );
    }
}

#[test]
fn fig10_bigger_gpu_wins_at_scale() {
    // §5.1's cross-device observations.
    let small = DeviceProfile::rtx_2070();
    let big = DeviceProfile::rtx_2080ti();
    // At large T the 2080 Ti sustains a higher speedup …
    assert!(backward_speedup(30000, 16, &big) > backward_speedup(30000, 16, &small));
    // … and as B grows its speedup decays slower (higher at B = 128).
    assert!(backward_speedup(1000, 128, &big) > backward_speedup(1000, 128, &small));
}

#[test]
fn abstract_maxima_are_reachable() {
    // "up to 2.75× overall and 8.8× backward" — our model must reach at
    // least those factors somewhere on the paper's sweep lines (T varies at
    // B = 16; B varies at T = 1000) and not be wildly beyond (<20×).
    let mut best_bwd: f64 = 0.0;
    let mut best_ovr: f64 = 0.0;
    for d in [DeviceProfile::rtx_2070(), DeviceProfile::rtx_2080ti()] {
        for &t in &[10usize, 30, 100, 300, 1000, 3000, 10000, 30000] {
            best_bwd = best_bwd.max(backward_speedup(t, 16, &d));
            best_ovr = best_ovr.max(overall_speedup(t, 16, &d));
        }
        for &b in &[256usize, 128, 64, 32, 16, 8, 4, 2] {
            best_bwd = best_bwd.max(backward_speedup(1000, b, &d));
            best_ovr = best_ovr.max(overall_speedup(1000, b, &d));
        }
    }
    assert!(best_bwd >= 8.8, "max backward {best_bwd}");
    assert!(best_bwd < 20.0, "max backward {best_bwd} implausible");
    assert!(best_ovr >= 2.75, "max overall {best_ovr}");
    assert!(best_ovr < 5.0, "max overall {best_ovr} implausible");
}

#[test]
fn fig3_pipeline_memory_grows_but_bppsa_shrinks() {
    // §2.2/§3.6: GPipe per-device memory has a +K term; BPPSA shrinks to a
    // single-Jacobian floor.
    let layers = 1000;
    let gpipe: Vec<usize> = [8usize, 64, 512]
        .iter()
        .map(|&k| pipeline_per_device_bytes(layers, k, 1 << 16))
        .collect();
    assert!(gpipe[2] > gpipe[1], "{gpipe:?}");
    let ours: Vec<usize> = [8usize, 64, 512, 4096]
        .iter()
        .map(|&p| bppsa_per_device_bytes(layers, p, 1 << 19))
        .collect();
    assert!(ours.windows(2).all(|w| w[1] <= w[0]), "{ours:?}");
    assert_eq!(ours[3], 1 << 19, "floor is one Jacobian");
}

#[test]
fn gpipe_bubble_grows_linearly_with_pipeline_length() {
    let fractions: Vec<f64> = [2usize, 4, 8, 16, 32]
        .iter()
        .map(|&k| {
            GpipeConfig {
                layers: 64,
                devices: k,
                micro_batches: 4,
                activation_bytes: 1,
            }
            .analyze()
            .bubble_fraction
        })
        .collect();
    assert!(fractions.windows(2).all(|w| w[1] > w[0]), "{fractions:?}");
}

#[test]
fn pipedream_staleness_grows_with_devices() {
    let st: Vec<usize> = [2usize, 4, 8, 16]
        .iter()
        .map(|&k| {
            PipedreamConfig {
                layers: 64,
                devices: k,
                stage_weight_bytes: 1,
                activation_bytes: 1,
            }
            .analyze()
            .max_staleness
        })
        .collect();
    assert_eq!(st, vec![1, 3, 7, 15]);
}

#[test]
fn blelloch_step_complexity_is_logarithmic() {
    // Equation 6 at the scales of Figure 10's sweep.
    for &t in &[1000usize, 3000, 10000, 30000] {
        let s = ScanSchedule::full(t + 1);
        let log2 = (t as f64).log2().ceil() as usize;
        assert!(
            s.step_count() <= 2 * log2 + 2,
            "T={t}: {} steps vs 2·log₂ = {}",
            s.step_count(),
            2 * log2
        );
        // Work stays linear (Equation 7).
        assert!(s.combine_count() <= 2 * (t + 1));
    }
}
