//! Cross-crate integration tests for the paper's central claim (§3.5):
//! BPPSA is a *reconstruction* of back-propagation — same gradients, up to
//! floating-point reassociation — across model families, Jacobian
//! representations, executors, and schedules.

use bppsa::models::train::BackwardMethod;
use bppsa::prelude::*;

fn mlp(seed: u64) -> Network<f64> {
    let mut rng = seeded_rng(seed);
    let mut net = Network::new();
    net.push(Box::new(Linear::new(12, 32, &mut rng)));
    net.push(Box::new(Tanh::new(vec![32])));
    net.push(Box::new(Linear::new(32, 24, &mut rng)));
    net.push(Box::new(Relu::new(vec![24])));
    net.push(Box::new(Linear::new(24, 16, &mut rng)));
    net.push(Box::new(Relu::new(vec![16])));
    net.push(Box::new(Linear::new(16, 5, &mut rng)));
    net
}

fn cnn(seed: u64) -> Network<f64> {
    let mut rng = seeded_rng(seed);
    let mut net = Network::new();
    net.push(Box::new(Conv2d::new(
        Conv2dConfig::vgg_style(2, 6, (10, 10)),
        &mut rng,
    )));
    net.push(Box::new(Relu::new(vec![6, 10, 10])));
    net.push(Box::new(MaxPool2d::new(6, (2, 2), (2, 2), (10, 10))));
    net.push(Box::new(Conv2d::new(
        Conv2dConfig {
            in_channels: 6,
            out_channels: 8,
            kernel: (3, 3),
            stride: (1, 1),
            padding: (0, 0),
            input_hw: (5, 5),
        },
        &mut rng,
    )));
    net.push(Box::new(Relu::new(vec![8, 3, 3])));
    net.push(Box::new(AvgPool2d::new(8, (3, 3), (3, 3), (3, 3))));
    net.push(Box::new(Flatten::new(vec![8, 1, 1])));
    net.push(Box::new(Linear::new(8, 4, &mut rng)));
    net
}

fn check_all_paths(net: &Network<f64>, input_shape: Vec<usize>, out_len: usize, seed: u64) {
    let mut rng = seeded_rng(seed);
    let x = bppsa::tensor::init::uniform_tensor(&mut rng, input_shape, 1.0);
    let tape = net.forward(&x);
    let g = bppsa::tensor::init::uniform_vector(&mut rng, out_len, 1.0);
    let reference = net.backward_bp(&tape, &g);

    for repr in [JacobianRepr::Sparse, JacobianRepr::Dense] {
        for opts in [
            BppsaOptions::serial(),
            BppsaOptions::threaded(2),
            BppsaOptions::threaded(8),
            BppsaOptions::serial().hybrid(0),
            BppsaOptions::serial().hybrid(1),
            BppsaOptions::serial().hybrid(2),
            BppsaOptions::threaded(4).hybrid(2),
        ] {
            let scanned = net.backward_bppsa(&tape, &g, repr, opts);
            let diff = reference.max_abs_diff(&scanned);
            assert!(
                diff < 1e-9,
                "{repr:?} / {opts:?}: gradients differ by {diff}"
            );
        }
    }
}

#[test]
fn mlp_gradients_exact_across_all_paths() {
    check_all_paths(&mlp(1), vec![12], 5, 2);
}

#[test]
fn cnn_gradients_exact_across_all_paths() {
    check_all_paths(&cnn(3), vec![2, 10, 10], 4, 4);
}

#[test]
fn rnn_gradients_exact_at_length_1000() {
    // The paper's T = 1000 headline configuration, single sample.
    let rnn = VanillaRnn::<f64>::new(1, 20, 10, &mut seeded_rng(5));
    let data = BitstreamDataset::<f64>::generate(1, 1000, 6);
    let s = data.sample(0);
    let states = rnn.forward(&s.bits);
    let (_, seed, g_logits) = rnn.loss_and_seed(&states, s.label);
    let bptt = rnn.backward_bptt(&s.bits, &states, &seed, &g_logits);
    let scan = rnn.backward_bppsa(
        &s.bits,
        &states,
        &seed,
        &g_logits,
        BppsaOptions::threaded(8),
    );
    let diff = bptt.max_abs_diff(&scan);
    // 1000 matrix products reassociated: allow generous fp headroom.
    assert!(diff < 1e-8, "T=1000 gradients differ by {diff}");
}

#[test]
fn f32_precision_stays_trainable() {
    // The convergence experiments run in f32; the reassociation error must
    // stay far below gradient magnitudes.
    let mut rng = seeded_rng(7);
    let mut net = Network::<f32>::new();
    net.push(Box::new(Linear::new(10, 20, &mut rng)));
    net.push(Box::new(Relu::new(vec![20])));
    net.push(Box::new(Linear::new(20, 10, &mut rng)));
    let x = bppsa::tensor::init::uniform_tensor(&mut rng, vec![10], 1.0);
    let tape = net.forward(&x);
    let g = bppsa::tensor::init::uniform_vector(&mut rng, 10, 1.0);
    let bp = net.backward_bp(&tape, &g);
    let scan = net.backward_bppsa(&tape, &g, JacobianRepr::Sparse, BppsaOptions::serial());
    assert!(bp.max_abs_diff(&scan) < 1e-4);
}

#[test]
fn scan_output_positions_match_equation4() {
    // Hand-check the scan output layout against Equation 4's array.
    let mut chain = JacobianChain::new(Vector::from_vec(vec![2.0f64])); // ∇x_2
    let j1t = Matrix::from_rows(&[&[3.0], &[5.0]]); // J1ᵀ: d0=2 × d1=1
    let j2t = Matrix::from_rows(&[&[7.0]]); // J2ᵀ: d1=1 × d2=1
    chain.push(ScanElement::Dense(j1t));
    chain.push(ScanElement::Dense(j2t));
    let res = bppsa_backward(&chain, BppsaOptions::serial());
    // ∇x_2 = seed = [2]; ∇x_1 = J2ᵀ ∇x_2 = [14].
    assert_eq!(res.grad_x(2).as_slice(), &[2.0]);
    assert_eq!(res.grad_x(1).as_slice(), &[14.0]);
    // And the linear baseline agrees.
    let lin = linear_backward(&chain);
    assert_eq!(lin.grad_x(1).as_slice(), &[14.0]);
}

#[test]
fn batched_training_step_gradients_match() {
    // The full batched path (losses, seeds scaled by 1/B, accumulation)
    // produces identical parameter gradients under both methods.
    let data = SyntheticCifar::<f64>::generate(8, 8, 0.2, 8);
    let net = lenet_tiny::<f64>(&mut seeded_rng(9));
    let batch: Vec<(&Tensor<f64>, usize)> = (0..8)
        .map(|i| {
            let s = data.sample(i);
            (&s.image, s.label)
        })
        .collect();
    let (loss_bp, grads_bp, _) =
        bppsa::models::train::network_batch_step(&net, &batch, BackwardMethod::Bp);
    let (loss_scan, grads_scan, _) = bppsa::models::train::network_batch_step(
        &net,
        &batch,
        BackwardMethod::Bppsa {
            opts: BppsaOptions::serial(),
            repr: JacobianRepr::Sparse,
        },
    );
    assert!((loss_bp - loss_scan).abs() < 1e-12);
    for (a, b) in grads_bp.iter().zip(&grads_scan) {
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < 1e-9);
        }
    }
}
