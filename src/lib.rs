//! # bppsa — Scaling Back-propagation by Parallel Scan Algorithm
//!
//! A full Rust reproduction of *"BPPSA: Scaling Back-propagation by Parallel
//! Scan Algorithm"* (Wang, Bai & Pekhimenko, MLSys 2020): back-propagation
//! reformulated as an exclusive scan over transposed Jacobians and scaled by
//! a modified Blelloch scan, together with every substrate the paper depends
//! on — dense/sparse linear algebra, an NN operator library with analytic
//! CSR Jacobian generation, a generic scan framework, a PRAM cost-model
//! simulator with the paper's GPU profiles, pipeline-parallelism baselines,
//! the paper's models, datasets, and training loops, and a deadline
//! micro-batching serving front door ([`serve`]) that coalesces
//! independently-arriving backward requests into batched planned-scan
//! executions.
//!
//! This crate is a facade: it re-exports the workspace crates and hosts the
//! runnable examples (`examples/`) and cross-crate integration tests
//! (`tests/`). See the README for the architecture map and EXPERIMENTS.md
//! for paper-vs-measured results.
//!
//! ## Quickstart
//!
//! ```
//! use bppsa::prelude::*;
//!
//! // Build a model (Equation 1: f = f1 ∘ … ∘ fn).
//! let mut rng = seeded_rng(0);
//! let mut net = Network::<f64>::new();
//! net.push(Box::new(Linear::new(8, 32, &mut rng)));
//! net.push(Box::new(Relu::new(vec![32])));
//! net.push(Box::new(Linear::new(32, 4, &mut rng)));
//!
//! // Forward, then backward both ways.
//! let tape = net.forward(&Tensor::from_vec(vec![8], vec![0.1; 8]));
//! let seed = Vector::from_vec(vec![1.0, -0.5, 0.25, 0.0]);
//! let baseline = net.backward_bp(&tape, &seed);
//! let scanned = net.backward_bppsa(&tape, &seed, JacobianRepr::Sparse, BppsaOptions::threaded(4));
//!
//! // §3.5: BPPSA reconstructs BP exactly (up to fp reassociation).
//! assert!(baseline.max_abs_diff(&scanned) < 1e-10);
//! ```
//!
//! ## Steady-state training: plan once, execute many
//!
//! Because the Jacobians' guaranteed-zero patterns are deterministic (§3.3),
//! the *entire* backward pass can be compiled ahead of training into a
//! numeric-only program over pre-sized buffers. [`PlannedScan`](core::PlannedScan)
//! is the compiler, [`ScanWorkspace`](core::ScanWorkspace) the reusable buffers,
//! and the per-iteration [`PlannedScan::execute_with`](core::PlannedScan::execute_with)
//! performs **zero heap allocations** in the steady state (asserted by a
//! counting-allocator test). [`PlannedBackwardCache`](core::PlannedBackwardCache)
//! packages the lifecycle for training loops; for *concurrent* mini-batches
//! of the same compiled plan, [`WorkspacePool`](core::WorkspacePool) and
//! [`BatchedBackward`](core::BatchedBackward) add the pooled scale-out layer
//! (see `ARCHITECTURE.md`):
//!
//! ```
//! use bppsa::prelude::*;
//! use bppsa::sparse::Csr;
//!
//! let mut cache = PlannedBackwardCache::<f64>::new();
//! for step in 0..4 {
//!     // Every iteration: same patterns, fresh values.
//!     let mut chain = JacobianChain::new(Vector::from_vec(vec![1.0, step as f64]));
//!     chain.push(ScanElement::Sparse(Csr::from_diagonal(&[0.5, 1.0 + step as f64])));
//!     let grads = cache.backward(&chain, BppsaOptions::serial());
//!     assert_eq!(grads.grads().len(), 1);
//! }
//! assert_eq!(cache.plans_built(), 1); // symbolic work ran exactly once
//! ```

#![warn(missing_docs)]

pub use bppsa_core as core;
pub use bppsa_models as models;
pub use bppsa_ops as ops;
pub use bppsa_pipeline as pipeline;
pub use bppsa_pram as pram;
pub use bppsa_scan as scan;
pub use bppsa_serve as serve;
pub use bppsa_sparse as sparse;
pub use bppsa_tensor as tensor;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use bppsa_core::{
        bppsa_backward, linear_backward, BackwardResult, BatchedBackward, BppsaOptions, Gradients,
        JacobianChain, JacobianRepr, JacobianScanOp, Network, PlannedBackwardCache, PlannedScan,
        ScanElement, ScanWorkspace, Tape, WorkspacePool,
    };
    pub use bppsa_models::{
        lenet5, lenet_tiny, vgg11, vgg11_convs, Adam, BitstreamDataset, Gru, Optimizer, RnnGrads,
        Sgd, SyntheticCifar, VanillaRnn,
    };
    pub use bppsa_ops::{
        AvgPool2d, Conv2d, Conv2dConfig, Flatten, Linear, MaxPool2d, MseLoss, Operator, Relu,
        Sigmoid, SoftmaxCrossEntropy, Tanh,
    };
    pub use bppsa_pram::{simulate_speedups, DeviceProfile, RnnWorkload};
    pub use bppsa_scan::{
        execute_in_place, global_pool, serial_exclusive_scan, Executor, ScanOp, ScanSchedule,
        WorkerPool,
    };
    pub use bppsa_serve::{BppsaService, ServeConfig, Ticket};
    pub use bppsa_sparse::{spgemm, Coo, Csr, SparsityPattern, SymbolicProduct};
    pub use bppsa_tensor::init::seeded_rng;
    pub use bppsa_tensor::{Matrix, Scalar, Tensor, Vector};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_compiles_and_links() {
        use crate::prelude::*;
        let m = Matrix::<f32>::identity(2);
        assert_eq!(m.get(0, 0), 1.0);
    }
}
