//! The paper's §4.1 end-to-end benchmark in miniature: train the Equation-9
//! vanilla RNN on the bitstream-classification task (Equation 8), once with
//! BPTT and once with BPPSA, from identical seeds.
//!
//! Run: `cargo run --example rnn_training --release`

use bppsa::models::train::{evaluate_rnn, train_rnn, BackwardMethod};
use bppsa::prelude::*;

fn main() {
    // Scaled-down §4.1: T = 64, B = 8, 128 samples (paper: T up to 30000,
    // B = 16, 32000 samples). Equation 8: x_t ~ Bernoulli(0.05 + 0.1·c).
    let data = BitstreamDataset::<f32>::generate(128, 64, 7);
    println!(
        "bitstream task: {} samples, T = {}, 10 classes",
        data.len(),
        data.seq_len()
    );

    let run = |name: &str, method: BackwardMethod| {
        let mut rnn = VanillaRnn::<f32>::new(1, 20, 10, &mut seeded_rng(99));
        let mut opt = Adam::new(1e-3);
        let log = train_rnn(&mut rnn, &data, &mut opt, method, 8, 8, None);
        let acc = evaluate_rnn(&rnn, &data);
        println!(
            "{name:>6}: loss {:.4} → {:.4}, accuracy {acc:.2}, backward {:.3}s",
            log.records[0].loss,
            log.final_loss(),
            log.backward_s(),
        );
        log
    };

    let bptt = run("BPTT", BackwardMethod::Bp);
    let bppsa = run("BPPSA", BackwardMethod::bppsa_pooled());
    // The steady-state fast path: one fused block-diagonal scan per
    // mini-batch, symbolically planned once, then executed numeric-only
    // over a reused zero-allocation workspace every iteration.
    let planned = run(
        "PLANNED",
        BackwardMethod::bppsa_fused_planned(BppsaOptions::serial()),
    );

    // The training trajectories are identical — BPPSA changes *how*
    // gradients are computed, not what they are.
    let gap = bptt.max_loss_gap(&bppsa);
    println!("max per-iteration loss gap (BPTT vs BPPSA): {gap:.2e}");
    assert!(gap < 1e-3);
    let gap_planned = bptt.max_loss_gap(&planned);
    println!("max per-iteration loss gap (BPTT vs planned): {gap_planned:.2e}");
    assert!(gap_planned < 1e-3);

    // At GPU scale the time axis compresses; the PRAM model shows by how much.
    let speedup = simulate_speedups(&RnnWorkload::paper_default(), &DeviceProfile::rtx_2070());
    println!(
        "PRAM model, paper config (T=1000, B=16, RTX 2070): backward {:.2}x, overall {:.2}x",
        speedup.backward, speedup.overall
    );
    println!("(paper measures 4.53x / 2.17x for this configuration)");
}
