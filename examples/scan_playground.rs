//! The scan framework on its own: exclusive scans with commutative and
//! non-commutative operators, full/hybrid/linear schedules, and the
//! work/step counts behind the paper's Equations 6–7.
//!
//! Run: `cargo run --example scan_playground`

use bppsa::prelude::*;
use bppsa::scan::{hillis_steele_steps, hillis_steele_work};

/// Affine-map composition — associative, non-commutative (like ⊙).
struct Compose;
impl ScanOp<(f64, f64)> for Compose {
    fn combine(&self, f: &(f64, f64), g: &(f64, f64)) -> (f64, f64) {
        (g.0 * f.0, g.0 * f.1 + g.1)
    }
    fn identity(&self) -> (f64, f64) {
        (1.0, 0.0)
    }
}

fn main() {
    // Exclusive prefix sums, the classic.
    struct Add;
    impl ScanOp<i64> for Add {
        fn combine(&self, a: &i64, b: &i64) -> i64 {
            a + b
        }
        fn identity(&self) -> i64 {
            0
        }
    }
    let mut xs: Vec<i64> = (1..=8).collect();
    execute_in_place(&ScanSchedule::full(8), &Add, &mut xs, Executor::Serial);
    println!("exclusive prefix sums of 1..=8: {xs:?}");

    // Non-commutative: composing affine maps x ↦ a·x + b in order.
    let maps = vec![(2.0, 1.0), (0.5, 0.0), (1.0, -3.0), (3.0, 2.0)];
    let serial = serial_exclusive_scan(&Compose, &maps);
    let mut parallel = maps.clone();
    execute_in_place(
        &ScanSchedule::full(4),
        &Compose,
        &mut parallel,
        Executor::Threaded(2),
    );
    assert_eq!(serial, parallel);
    println!("affine-map prefix compositions: {parallel:?}");

    // Work/step complexity across schedules (Equations 6 and 7).
    println!("\nn = 1024 elements:");
    for (name, schedule) in [
        ("linear scan   ", ScanSchedule::linear(1024)),
        ("hybrid (k = 5)", ScanSchedule::with_up_levels(1024, 5)),
        ("full Blelloch ", ScanSchedule::full(1024)),
    ] {
        println!(
            "  {name}: {:4} combines (work), {:4} steps (critical path)",
            schedule.combine_count(),
            schedule.step_count()
        );
    }
    println!(
        "  Hillis–Steele : {:4} combines (work), {:4} steps — step-optimal but Θ(n log n) work",
        hillis_steele_work(1024),
        hillis_steele_steps(1024)
    );
    println!("\nthe paper picks Blelloch: Θ(n) work like BP itself, Θ(log n) steps.");
}
