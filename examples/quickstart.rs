//! Quickstart: back-propagation as a parallel scan, end to end.
//!
//! Builds a small CNN, computes gradients with classic BP and with BPPSA
//! (sparse Jacobians + modified Blelloch scan), verifies they match, and
//! prints what the scan actually did.
//!
//! Run: `cargo run --example quickstart --release`

use bppsa::prelude::*;

fn main() {
    // 1. A small CNN in the paper's Equation-1 form: f = f1 ∘ … ∘ fn.
    let mut rng = seeded_rng(42);
    let mut net = Network::<f64>::new();
    net.push(Box::new(Conv2d::new(
        Conv2dConfig::vgg_style(1, 4, (8, 8)),
        &mut rng,
    )));
    net.push(Box::new(Relu::new(vec![4, 8, 8])));
    net.push(Box::new(MaxPool2d::new(4, (2, 2), (2, 2), (8, 8))));
    net.push(Box::new(Flatten::new(vec![4, 4, 4])));
    net.push(Box::new(Linear::new(64, 10, &mut rng)));
    println!(
        "network: {} layers, {} parameters",
        net.num_layers(),
        net.num_params()
    );

    // 2. Forward pass, recording the tape of activations x0 … xn.
    let image = bppsa::tensor::init::uniform_tensor(&mut rng, vec![1, 8, 8], 1.0);
    let tape = net.forward(&image);

    // 3. A loss gradient seeds the backward pass (∇x_n in Equation 5).
    let logits = tape.output().to_vector();
    let (loss, seed) = SoftmaxCrossEntropy::loss_and_grad(&logits, 3);
    println!("loss = {loss:.4}");

    // 4. Classic BP: sequential VJPs (the strong dependency of Equation 3).
    let baseline = net.backward_bp(&tape, &seed);

    // 5. BPPSA: transposed Jacobians in CSR, scanned in Θ(log n) steps.
    let scanned = net.backward_bppsa(
        &tape,
        &seed,
        JacobianRepr::Sparse,
        BppsaOptions::threaded(4),
    );

    // 6. §3.5: BPPSA is a reconstruction of BP, not an approximation.
    let diff = baseline.max_abs_diff(&scanned);
    println!("max |BP − BPPSA| over all gradients: {diff:.3e}");
    assert!(diff < 1e-10);

    // 7. What the scan did: inspect the chain and schedule.
    let chain = net.build_chain(&tape, &seed, JacobianRepr::Sparse);
    let schedule = ScanSchedule::full(chain.num_layers() + 1);
    println!(
        "scan array: {} elements; schedule: {} combines over {} steps (linear scan: {} steps)",
        chain.num_layers() + 1,
        schedule.combine_count(),
        schedule.step_count(),
        chain.num_layers() + 1,
    );
    for (i, jt) in chain.jacobians().iter().enumerate() {
        println!("  J{}ᵀ = {jt}", i + 1);
    }
    println!("OK: gradients agree; see examples/rnn_training.rs for the paper's benchmark.");
}
