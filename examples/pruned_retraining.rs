//! The paper's §4.2 use case: retraining a magnitude-pruned network, where
//! the conv Jacobians' values depend only on the (mostly zero) weights, so
//! BPPSA's per-step sparse products get cheap.
//!
//! Prunes a small conv stack to 97%, shows the Jacobian nnz collapse, the
//! per-step FLOP analysis (Figure 11's machinery), and verifies pruned
//! gradients still match classic BP exactly.
//!
//! Run: `cargo run --example pruned_retraining --release`

use bppsa::core::flops::{analyze_baseline_flops, analyze_scan_flops, total_flops};
use bppsa::models::prune::{prune_operator, weight_sparsity};
use bppsa::prelude::*;

fn main() {
    let mut rng = seeded_rng(5);
    let hw = 10usize;

    // A 4-conv stack (VGG-flavored), pruned to 97%.
    let mut net = Network::<f64>::new();
    let widths = [(1usize, 8usize), (8, 8), (8, 8), (8, 8)];
    for &(ci, co) in &widths {
        net.push(Box::new(Conv2d::new(
            Conv2dConfig::vgg_style(ci, co, (hw, hw)),
            &mut rng,
        )));
        net.push(Box::new(Relu::new(vec![co, hw, hw])));
    }

    println!("pruning 97% of conv weights (See et al. magnitude pruning):");
    for op in net.ops_mut() {
        if op.prunable_len() > 0 {
            prune_operator(op.as_mut(), 0.97);
            println!(
                "  {}: weight sparsity {:.3}",
                op.name(),
                weight_sparsity(op.as_ref())
            );
        }
    }

    // Jacobian shrinkage: guaranteed pattern vs pruned values.
    let x = bppsa::tensor::init::uniform_tensor(&mut rng, vec![1, hw, hw], 1.0);
    let tape = net.forward(&x);
    let chain_full = net.build_chain(
        &tape,
        &Vector::filled(8 * hw * hw, 1.0),
        JacobianRepr::Sparse,
    );
    println!("\ntransposed-Jacobian sizes (guaranteed pattern → after pruning zeros):");
    let mut pruned_chain = JacobianChain::new(Vector::filled(8 * hw * hw, 1.0));
    for (i, jt) in chain_full.jacobians().iter().enumerate() {
        if let ScanElement::Sparse(m) = jt {
            let pruned = m.pruned();
            println!("  J{}ᵀ: nnz {} → {}", i + 1, m.nnz(), pruned.nnz());
            pruned_chain.push(ScanElement::Sparse(pruned));
        }
    }

    // Figure 11's analysis: per-step FLOPs under the hybrid schedule.
    let steps = analyze_scan_flops(&pruned_chain, BppsaOptions::serial().hybrid(2));
    let baseline = analyze_baseline_flops(&pruned_chain);
    println!(
        "\nFLOPs: BPPSA total {:.2e} over {} steps vs baseline {:.2e} over {} sequential steps",
        total_flops(&steps) as f64,
        steps.len(),
        total_flops(&baseline) as f64,
        baseline.len()
    );

    // Exactness still holds on the pruned network.
    let seed = Vector::filled(8 * hw * hw, 0.01);
    let bp = net.backward_bp(&tape, &seed);
    let scan = net.backward_bppsa(&tape, &seed, JacobianRepr::Sparse, BppsaOptions::serial());
    let diff = bp.max_abs_diff(&scan);
    println!("max |BP − BPPSA| on the pruned network: {diff:.3e}");
    assert!(diff < 1e-9);
    println!("OK: pruned retraining gradients are exact.");
}
